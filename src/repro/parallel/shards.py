"""Per-shard build and search tasks for :class:`ShardExecutor`.

The unit of parallelism mirrors the paper's multi-GPU story (Sec. IV-C2 /
V-E): one *shard* — an independent CAGRA sub-index — per worker, exactly
GGNN's independent-shard construction trick.  This module turns the two
shard operations into pool-friendly pure functions:

* :func:`build_shards` — one NN-descent + graph-optimization build per
  shard; the (potentially huge) dataset crosses the process boundary via
  :mod:`repro.parallel.sharedmem`, each worker slices its shard's rows,
  and only the small ``(n_s, d)`` adjacency array is pickled back;
* :func:`search_shards` — one full CAGRA search per shard; with the
  process backend, shard datasets and graphs are mapped from a
  :class:`SharedIndexHandle` the owner keeps alive across calls, so a
  serving layer pays the copy once per index generation, not per query.

Results are bitwise identical to running the same loop serially: every
task derives its randomness from explicit seeds in its payload
(``GraphBuildConfig.seed + shard`` for builds, the per-query
``[seed, query]`` Philox streams for searches), never from worker
identity, scheduling order, or time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.batch_search import search_batch_fast
from repro.core.config import GraphBuildConfig, SearchConfig
from repro.core.distances import as_storage_dtype
from repro.core.graph import FixedDegreeGraph
from repro.core.index import CagraIndex
from repro.core.search import SearchResult, search_batch
from repro.parallel.executor import ShardExecutor
from repro.parallel.sharedmem import ArraySpec, SharedArray, attach_array

__all__ = [
    "ShardPlan",
    "SharedIndexHandle",
    "build_shards",
    "plan_shards",
    "search_shards",
]


@dataclass(frozen=True)
class ShardPlan:
    """One shard's slice of the dataset and its build configuration."""

    ids: np.ndarray  # int64 global row ids owned by this shard
    config: GraphBuildConfig


def plan_shards(
    num_rows: int, num_shards: int, config: GraphBuildConfig
) -> list[ShardPlan]:
    """Round-robin split plus per-shard build configs.

    Each shard's degree is capped by its population and its seed is
    offset by the shard number, so shard ``s`` builds identically no
    matter which worker (or process) runs it.
    """
    plans = []
    for s in range(num_shards):
        ids = np.arange(s, num_rows, num_shards, dtype=np.int64)
        # Shard degree cannot exceed the shard population.
        degree = min(config.graph_degree, max(2, (len(ids) - 1) // 2 * 2))
        shard_config = GraphBuildConfig(
            graph_degree=degree,
            intermediate_degree=0,
            reordering=config.reordering,
            add_reverse_edges=config.add_reverse_edges,
            nn_descent_iterations=config.nn_descent_iterations,
            nn_descent_sample_rate=config.nn_descent_sample_rate,
            nn_descent_termination_delta=config.nn_descent_termination_delta,
            metric=config.metric,
            seed=config.seed + s,
        )
        plans.append(ShardPlan(ids=ids, config=shard_config))
    return plans


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------
def _build_shard_task(payload):
    """Worker body: build one shard, return (neighbors, report, seconds).

    ``source`` is either the dataset itself (serial/thread backends) or
    an :class:`ArraySpec` naming the shared segment (process backend).
    """
    source, ids, config, dataset_dtype = payload
    data = attach_array(source) if isinstance(source, ArraySpec) else source
    started = time.perf_counter()
    index = CagraIndex.build(data[ids], config, dataset_dtype=dataset_dtype)
    seconds = time.perf_counter() - started
    return index.graph.neighbors, index.build_report, seconds


def build_shards(
    dataset: np.ndarray,
    plans: list[ShardPlan],
    dataset_dtype: str,
    executor: ShardExecutor,
) -> list[CagraIndex]:
    """Build every planned shard on ``executor``; shards in plan order."""
    dataset = np.asarray(dataset)
    share = None
    source = dataset
    if executor.backend == "process":
        share = SharedArray.create(dataset)
        source = share.spec
    payloads = [(source, plan.ids, plan.config, dataset_dtype) for plan in plans]
    try:
        outputs = executor.map(_build_shard_task, payloads)
    finally:
        if share is not None:
            share.close()
    shards = []
    for plan, (neighbors, report, _seconds) in zip(plans, outputs):
        # Reconstruct the shard around the parent's own dataset slice —
        # only the adjacency crossed the process boundary.
        stored = as_storage_dtype(dataset[plan.ids], dataset_dtype)
        shards.append(
            CagraIndex(
                stored,
                FixedDegreeGraph(neighbors),
                metric=plan.config.metric,
                build_config=plan.config,
                build_report=report,
            )
        )
    return shards


# ----------------------------------------------------------------------
# search
# ----------------------------------------------------------------------
class SharedIndexHandle:
    """Shared-memory projection of a sharded index's arrays.

    Owning code (typically :class:`~repro.core.sharding.ShardedCagraIndex`)
    creates this once, reuses it across every process-backend search, and
    closes it when the index is dropped — workers attach each segment a
    single time and serve all subsequent searches from the same mapping.
    """

    def __init__(self, shards: list[CagraIndex]):
        self._arrays: list[SharedArray] = []
        self.shard_specs: list[tuple[ArraySpec, ArraySpec, str]] = []
        for shard in shards:
            data = SharedArray.create(shard.dataset)
            graph = SharedArray.create(shard.graph.neighbors)
            self._arrays.extend([data, graph])
            self.shard_specs.append((data.spec, graph.spec, shard.metric))

    def close(self) -> None:
        for array in self._arrays:
            array.close()
        self._arrays = []
        self.shard_specs = []


def _run_search(data, graph, metric, queries, k, config, num_sms, fast, filter_mask):
    started = time.perf_counter()
    if fast:
        result = search_batch_fast(
            data, graph, queries, k, config=config, metric=metric,
            filter_mask=filter_mask,
        )
    else:
        result = search_batch(
            data, graph, queries, k, config=config, metric=metric,
            num_sms=num_sms, filter_mask=filter_mask,
        )
    return result, time.perf_counter() - started


def _search_shard_local(payload) -> tuple[SearchResult, float]:
    """Worker body for serial/thread backends (shared address space)."""
    shard, queries, k, config, num_sms, fast, filter_mask = payload
    return _run_search(
        shard.dataset, shard.graph, shard.metric,
        queries, k, config, num_sms, fast, filter_mask,
    )


def _search_shard_shm(payload) -> tuple[SearchResult, float]:
    """Worker body for the process backend (attach shared segments)."""
    (data_spec, graph_spec, metric), queries, k, config, num_sms, fast, \
        filter_mask = payload
    data = attach_array(data_spec)
    graph = FixedDegreeGraph(attach_array(graph_spec))
    return _run_search(
        data, graph, metric, queries, k, config, num_sms, fast, filter_mask
    )


def search_shards(
    shards: list[CagraIndex],
    queries: np.ndarray,
    k: int,
    config: SearchConfig | None,
    num_sms: int,
    executor: ShardExecutor,
    fast: bool = False,
    filter_masks: list[np.ndarray | None] | None = None,
    handle: SharedIndexHandle | None = None,
) -> list[tuple[SearchResult, float]]:
    """Search every shard on ``executor``; ``(result, seconds)`` per shard.

    ``filter_masks`` carries one per-shard (local-id) mask or ``None``
    each.  With the process backend, pass a live :class:`SharedIndexHandle`
    to reuse its segments; otherwise a temporary one is created for the
    call.
    """
    if filter_masks is None:
        filter_masks = [None] * len(shards)
    if executor.backend == "process":
        own_handle = handle is None
        if own_handle:
            handle = SharedIndexHandle(shards)
        payloads = [
            (handle.shard_specs[s], queries, k, config, num_sms, fast,
             filter_masks[s])
            for s in range(len(shards))
        ]
        try:
            return executor.map(_search_shard_shm, payloads)
        finally:
            if own_handle:
                handle.close()
    payloads = [
        (shard, queries, k, config, num_sms, fast, filter_masks[s])
        for s, shard in enumerate(shards)
    ]
    return executor.map(_search_shard_local, payloads)
