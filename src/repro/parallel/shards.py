"""Per-shard build and search tasks for :class:`ShardExecutor`.

The unit of parallelism mirrors the paper's multi-GPU story (Sec. IV-C2 /
V-E): one *shard* — an independent CAGRA sub-index — per worker, exactly
GGNN's independent-shard construction trick.  This module turns the two
shard operations into pool-friendly pure functions:

* :func:`build_shards` — one NN-descent + graph-optimization build per
  shard; the (potentially huge) dataset crosses the process boundary via
  :mod:`repro.parallel.sharedmem`, each worker slices its shard's rows,
  and only the small ``(n_s, d)`` adjacency array is pickled back;
* :func:`search_shards` — one full CAGRA search per shard; with the
  process backend, shard datasets and graphs are mapped from a
  :class:`SharedIndexHandle` the owner keeps alive across calls, so a
  serving layer pays the copy once per index generation, not per query.

Results are bitwise identical to running the same loop serially: every
task derives its randomness from explicit seeds in its payload
(``GraphBuildConfig.seed + shard`` for builds, the per-query
``[seed, query]`` Philox streams for searches), never from worker
identity, scheduling order, or time.

Both task bodies are instrumented with :mod:`repro.resilience.faults`
injection points (``shard.build`` / ``shard.search``), carried in the
payload as a JSON plan so the same faults fire on every backend and
start method; a ``corrupt`` fault poisons the search result in place
(sentinel ids, NaN distances) to exercise the merge layer's sentinel
masking.  With no plan configured the hook is a single ``None`` check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.traversal import search_batch_fast
from repro.core.config import GraphBuildConfig, SearchConfig
from repro.core.distances import as_storage_dtype
from repro.core.graph import INDEX_MASK, FixedDegreeGraph
from repro.core.index import CagraIndex
from repro.core.search import SearchResult, search_batch
from repro.parallel.executor import ShardExecutor, TaskOutcome
from repro.parallel.sharedmem import ArraySpec, SharedArray, attach_array
from repro.resilience import FaultInjector, FaultPlan

__all__ = [
    "ShardPlan",
    "SharedIndexHandle",
    "build_shards",
    "plan_shards",
    "search_shards",
]


@dataclass(frozen=True)
class ShardPlan:
    """One shard's slice of the dataset and its build configuration."""

    ids: np.ndarray  # int64 global row ids owned by this shard
    config: GraphBuildConfig


def plan_shards(
    num_rows: int, num_shards: int, config: GraphBuildConfig
) -> list[ShardPlan]:
    """Round-robin split plus per-shard build configs.

    Each shard's degree is capped by its population and its seed is
    offset by the shard number, so shard ``s`` builds identically no
    matter which worker (or process) runs it.
    """
    plans = []
    for s in range(num_shards):
        ids = np.arange(s, num_rows, num_shards, dtype=np.int64)
        # Shard degree cannot exceed the shard population.
        degree = min(config.graph_degree, max(2, (len(ids) - 1) // 2 * 2))
        shard_config = GraphBuildConfig(
            graph_degree=degree,
            intermediate_degree=0,
            reordering=config.reordering,
            add_reverse_edges=config.add_reverse_edges,
            nn_descent_iterations=config.nn_descent_iterations,
            nn_descent_sample_rate=config.nn_descent_sample_rate,
            nn_descent_termination_delta=config.nn_descent_termination_delta,
            metric=config.metric,
            seed=config.seed + s,
        )
        plans.append(ShardPlan(ids=ids, config=shard_config))
    return plans


def _task_injector(fault_json: str | None) -> FaultInjector | None:
    """Rebuild the fault injector inside the executing worker (if any)."""
    if not fault_json:
        return None
    return FaultInjector.from_json(fault_json)


# ----------------------------------------------------------------------
# build
# ----------------------------------------------------------------------
def _build_shard_task(payload):
    """Worker body: build one shard, return (neighbors, report, seconds).

    ``source`` is either the dataset itself (serial/thread backends) or
    an :class:`ArraySpec` naming the shared segment (process backend).
    """
    source, ids, config, dataset_dtype, shard_no, fault_json = payload
    injector = _task_injector(fault_json)
    if injector is not None:
        # ``corrupt`` is search-only; build faults fail loudly or stall.
        injector.fire("shard.build", shard=shard_no, op="build")
    data = attach_array(source) if isinstance(source, ArraySpec) else source
    started = time.perf_counter()
    index = CagraIndex.build(data[ids], config, dataset_dtype=dataset_dtype)
    seconds = time.perf_counter() - started
    return index.graph.neighbors, index.build_report, seconds


def build_shards(
    dataset: np.ndarray,
    plans: list[ShardPlan],
    dataset_dtype: str,
    executor: ShardExecutor,
    fault: FaultPlan | None = None,
) -> list[CagraIndex]:
    """Build every planned shard on ``executor``; shards in plan order.

    Builds are all-or-nothing: a shard whose build fails on every retry
    re-raises (a partially built sharded index has no useful meaning),
    unlike searches, which support degraded merges via
    :func:`search_shards` outcomes.
    """
    dataset = np.asarray(dataset)
    share = None
    source = dataset
    if executor.backend == "process":
        share = SharedArray.create(dataset)
        source = share.spec
    fault_json = fault.to_json() if fault is not None else None
    payloads = [
        (source, plan.ids, plan.config, dataset_dtype, s, fault_json)
        for s, plan in enumerate(plans)
    ]
    try:
        outputs = executor.map(_build_shard_task, payloads)
    finally:
        if share is not None:
            share.close()
    shards = []
    for plan, (neighbors, report, _seconds) in zip(plans, outputs):
        # Reconstruct the shard around the parent's own dataset slice —
        # only the adjacency crossed the process boundary.
        stored = as_storage_dtype(dataset[plan.ids], dataset_dtype)
        shards.append(
            CagraIndex(
                stored,
                FixedDegreeGraph(neighbors),
                metric=plan.config.metric,
                build_config=plan.config,
                build_report=report,
            )
        )
    return shards


# ----------------------------------------------------------------------
# search
# ----------------------------------------------------------------------
class SharedIndexHandle:
    """Shared-memory projection of a sharded index's arrays.

    Owning code (typically :class:`~repro.core.sharding.ShardedCagraIndex`)
    creates this once, reuses it across every process-backend search, and
    closes it when the index is dropped — workers attach each segment a
    single time and serve all subsequent searches from the same mapping.
    """

    def __init__(self, shards: list[CagraIndex]):
        self._arrays: list[SharedArray] = []
        self.shard_specs: list[tuple[ArraySpec, ArraySpec, str]] = []
        for shard in shards:
            data = SharedArray.create(shard.dataset)
            graph = SharedArray.create(shard.graph.neighbors)
            self._arrays.extend([data, graph])
            self.shard_specs.append((data.spec, graph.spec, shard.metric))

    def close(self) -> None:
        for array in self._arrays:
            array.close()
        self._arrays = []
        self.shard_specs = []


def _corrupt_result(result: SearchResult) -> SearchResult:
    """Apply a ``corrupt`` fault: sentinel ids + NaN distances.

    This is exactly the poison the merge layer's sentinel masking must
    absorb (see ``ShardedCagraIndex._merge``): half the slots become
    unfilled sentinels, every distance goes non-finite.
    """
    indices = result.indices.copy()
    distances = result.distances.copy()
    indices[:, : max(1, indices.shape[1] // 2)] = np.uint32(INDEX_MASK)
    distances[:] = np.nan
    return SearchResult(indices=indices, distances=distances, report=result.report)


def _run_search(data, graph, metric, queries, k, config, num_sms, fast, filter_mask):
    started = time.perf_counter()
    if fast:
        result = search_batch_fast(
            data, graph, queries, k, config=config, metric=metric,
            filter_mask=filter_mask,
        )
    else:
        result = search_batch(
            data, graph, queries, k, config=config, metric=metric,
            num_sms=num_sms, filter_mask=filter_mask,
        )
    return result, time.perf_counter() - started


def _search_shard_local(payload) -> tuple[SearchResult, float]:
    """Worker body for serial/thread backends (shared address space)."""
    shard, queries, k, config, num_sms, fast, filter_mask, shard_no, \
        fault_json = payload
    injector = _task_injector(fault_json)
    spec = None
    if injector is not None:
        spec = injector.fire("shard.search", shard=shard_no, op="search")
    result, seconds = _run_search(
        shard.dataset, shard.graph, shard.metric,
        queries, k, config, num_sms, fast, filter_mask,
    )
    if spec is not None and spec.kind == "corrupt":
        result = _corrupt_result(result)
    return result, seconds


def _search_shard_shm(payload) -> tuple[SearchResult, float]:
    """Worker body for the process backend (attach shared segments)."""
    (data_spec, graph_spec, metric), queries, k, config, num_sms, fast, \
        filter_mask, shard_no, fault_json = payload
    injector = _task_injector(fault_json)
    spec = None
    if injector is not None:
        spec = injector.fire("shard.search", shard=shard_no, op="search")
    data = attach_array(data_spec)
    graph = FixedDegreeGraph(attach_array(graph_spec))
    result, seconds = _run_search(
        data, graph, metric, queries, k, config, num_sms, fast, filter_mask
    )
    if spec is not None and spec.kind == "corrupt":
        result = _corrupt_result(result)
    return result, seconds


def search_shards(
    shards: list[CagraIndex],
    queries: np.ndarray,
    k: int,
    config: SearchConfig | None,
    num_sms: int,
    executor: ShardExecutor,
    fast: bool = False,
    filter_masks: list[np.ndarray | None] | None = None,
    handle: SharedIndexHandle | None = None,
    fault: FaultPlan | None = None,
    shard_ids: list[int] | None = None,
) -> list[TaskOutcome]:
    """Search every shard on ``executor``; one :class:`TaskOutcome` each.

    A successful outcome's ``value`` is ``(SearchResult, seconds)``; a
    failed outcome (retries exhausted, worker dead, watchdog fired)
    carries the error instead of raising, so the caller decides between
    all-or-nothing and degraded-merge semantics.

    ``filter_masks`` carries one per-shard (local-id) mask or ``None``
    each.  ``shard_ids`` names each entry's global shard number (for
    fault matching) when ``shards`` is a subset; defaults to positional.
    With the process backend, pass a live :class:`SharedIndexHandle` to
    reuse its segments; otherwise a temporary one is created for the
    call.
    """
    if filter_masks is None:
        filter_masks = [None] * len(shards)
    if shard_ids is None:
        shard_ids = list(range(len(shards)))
    fault_json = fault.to_json() if fault is not None else None
    if executor.backend == "process":
        own_handle = handle is None
        if own_handle:
            handle = SharedIndexHandle(shards)
        # A caller-provided handle spans the *whole* index (specs indexed
        # by global shard id); a handle built here spans only the subset.
        spec_of = (lambda s: handle.shard_specs[s]) if own_handle else (
            lambda s: handle.shard_specs[shard_ids[s]]
        )
        payloads = [
            (spec_of(s), queries, k, config, num_sms, fast,
             filter_masks[s], shard_ids[s], fault_json)
            for s in range(len(shards))
        ]
        try:
            return executor.map_outcomes(_search_shard_shm, payloads)
        finally:
            if own_handle:
                handle.close()
    payloads = [
        (shard, queries, k, config, num_sms, fast, filter_masks[s],
         shard_ids[s], fault_json)
        for s, shard in enumerate(shards)
    ]
    return executor.map_outcomes(_search_shard_local, payloads)
