"""repro — a pure-Python reproduction of CAGRA (ICDE 2024).

CAGRA (Cuda Anns GRAph-based) is NVIDIA's GPU-native graph index for
approximate nearest neighbor search.  This package reimplements the whole
system described in the paper — NN-descent initial graph construction,
rank-based graph optimization, the top-M/candidate-buffer search with
forgettable hash tables and single-/multi-CTA mappings — plus the CPU and
GPU baselines it is evaluated against (HNSW, NSSG, GGNN-like, GANNS-like)
and an analytical GPU cost model standing in for the A100 the paper ran on.

Quick start::

    import numpy as np
    from repro import CagraIndex, GraphBuildConfig, SearchConfig

    data = np.random.default_rng(0).standard_normal((2000, 64), dtype=np.float32)
    index = CagraIndex.build(data, GraphBuildConfig(graph_degree=16))
    result = index.search(data[:10], k=5, config=SearchConfig(itopk=32))
    print(result.indices)
"""

from repro.core import (
    CagraIndex,
    FixedDegreeGraph,
    GraphBuildConfig,
    HashTableConfig,
    SearchConfig,
    ShardedCagraIndex,
    refine,
    validate_index,
)

__version__ = "1.0.0"

__all__ = [
    "CagraIndex",
    "FixedDegreeGraph",
    "GraphBuildConfig",
    "HashTableConfig",
    "SearchConfig",
    "ShardedCagraIndex",
    "refine",
    "validate_index",
    "__version__",
]
