"""Command-line interface: ``repro-cagra`` (or ``python -m repro.cli``).

Subcommands::

    repro-cagra info                          # list registered datasets
    repro-cagra build  --dataset deep-1m --scale 4000 --out idx.npz
    repro-cagra search --index idx.npz --dataset deep-1m --scale 4000 -k 10
    repro-cagra bench  --dataset deep-1m --scale 3000 --batch 10000
    repro-cagra serve  --dataset deep-1m --scale 2000 --rate 500 --duration 2
    repro-cagra route  --dataset deep-1m --scale 2000 --replicas 3 --quota-rate 200
    repro-cagra stream --dataset deep-1m --scale 2000 --ops 500
    repro-cagra tune   --dataset deep-1m --scale 2000 --recall-target 0.95
    repro-cagra validate --index idx.npz      # integrity + reachability audit
    repro-cagra lint --strict                 # repo invariant linter (RL001-RL006)
    repro-cagra report                        # aggregate benchmarks/results/

``build``/``search`` work on the synthetic registry datasets or on real
``.fvecs`` files (``--fvecs path``).  ``search``, ``bench`` and ``serve``
accept ``--format json`` for machine-readable output (consistent with
``lint --format json``); text stays the default.

``build``, ``search``, ``serve`` and ``bench`` take ``--index-kind
{cagra,hnsw,ggnn,ganns,nssg,bruteforce}`` and route construction through
the :func:`repro.api.build_index` factory; saved files of every kind are
recognised by the :mod:`repro.api.persistence` format registry, so
``search --index`` and ``serve --index`` load whatever kind the file
holds.

``build`` and ``serve`` take ``--shards N`` to build a sharded index
(one independent CAGRA sub-index per simulated GPU), with
``--num-workers`` / ``--backend`` controlling the :mod:`repro.parallel`
worker pool that runs shard builds and searches concurrently.

Resilience (``docs/resilience.md``): ``search`` and ``serve`` take
``--on-shard-failure raise|partial`` and ``--min-quorum`` to serve
degraded results when shards of a sharded index fail, and
``--fault-plan`` (JSON or ``@path``; also the ``REPRO_FAULT_PLAN``
environment variable) to inject deterministic faults for chaos testing.
Degraded searches surface ``degraded`` / ``failed_shards`` in ``--format
json``, and ``serve --format json`` includes the server ``health()``
snapshot (circuit-breaker states, rolling failure rate).

Routing (``docs/router.md``): ``route`` fronts ``--replicas`` servers
with the :class:`repro.router.ShardRouter` (load-aware or round-robin
dispatch, hedged requests, per-tenant ``--quota-rate`` token buckets,
per-replica circuit breakers) and replays a seeded Zipfian multi-tenant
schedule; ``--kill-replica`` and ``--rolling-swap`` are the chaos knobs,
and when quotas are on the observed rejections are reconciled exactly
against the reference token-bucket model.  ``serve --replicas N`` (N>1)
delegates here.

Tuning (``docs/API.md``): ``tune`` sweeps ``itopk × search_width ×
max_iterations`` against a brute-force recall oracle and saves the
winning operating point as a :class:`repro.tune.TunedProfile` JSON.
``search``, ``serve`` and ``bench`` take ``--profile auto|PATH`` to load
one (``auto`` scans ``REPRO_PROFILE_DIR`` or ``./profiles`` by dataset
fingerprint); explicit ``--itopk`` / ``--search-width`` /
``--max-iterations`` flags always win over profile values, and a
corrupt or stale profile warns and falls back to defaults.

Mutability (``docs/streaming.md``): ``serve --mutable`` wraps the index
in a :class:`repro.stream.MutableIndex` (and ``--auto-rebuild`` starts
the background :class:`~repro.stream.rebuild.Rebuilder`); ``stream``
drives a mixed insert/delete/search closed loop at a mutable server and
reports freshness, served recall against a live brute-force oracle, and
every staleness-policy decision the rebuilder took.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.api import INDEX_KINDS, as_ann_index, build_index
from repro.baselines import exact_search
from repro.core.metrics import recall as recall_of
from repro.datasets import DATASETS, load_dataset, read_fvecs

__all__ = ["build_parser", "main"]


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="deep-1m", help="registry dataset name")
    parser.add_argument("--scale", type=int, default=0, help="vectors to generate (0 = default)")
    parser.add_argument("--fvecs", default="", help="load dataset from an .fvecs file instead")
    parser.add_argument("--queries", type=int, default=100, help="query count")
    parser.add_argument("--seed", type=int, default=0)


def _add_search_param_args(
    parser: argparse.ArgumentParser, profile: bool = True
) -> None:
    """Search-parameter knobs shared by search/serve/bench/stream.

    Defaults are ``None`` sentinels so a loaded tuned profile can supply
    values while explicit flags still win (see :func:`_search_config`).
    """
    parser.add_argument("--itopk", type=int, default=None,
                        help="internal top-M list size (default: tuned "
                             "profile if loaded, else 64)")
    parser.add_argument("--search-width", type=int, default=None,
                        help="parents expanded per iteration (default: "
                             "tuned profile if loaded, else 1)")
    parser.add_argument("--max-iterations", type=int, default=None,
                        help="iteration cap (0 = auto bound; default: "
                             "tuned profile if loaded, else 0)")
    parser.add_argument("--team-size", type=int, default=None,
                        choices=(0, 2, 4, 8, 16, 32),
                        help="threads per distance computation (0 = auto "
                             "from dim; default: tuned profile if loaded, "
                             "else 0)")
    parser.add_argument("--precision", choices=("fp32", "fp16"), default=None,
                        help="dataset storage precision searched by the "
                             "traversal engine (fp16 halves simulated DRAM "
                             "traffic; distances accumulate in fp32)")
    if profile:
        parser.add_argument("--profile", default="",
                            help="tuned profile: 'auto' (scan "
                                 "REPRO_PROFILE_DIR or ./profiles for this "
                                 "dataset/kind/k) or a profile JSON path")


def _resolve_profile_arg(args, dataset, index_kind: str, k: int):
    """``--profile`` → :class:`repro.tune.TunedProfile` or None (warned)."""
    spec = getattr(args, "profile", "")
    if not spec:
        return None
    from repro.tune import resolve_profile

    return resolve_profile(spec, data=dataset, index_kind=index_kind, k=k)


def _search_config(args, profile=None, **base_fields) -> "SearchConfig":
    """Merge search parameters: explicit flags > tuned profile > defaults."""
    config = SearchConfig(**base_fields)
    if profile is not None:
        config = profile.search_config(base=config)
    overrides = {
        name: value
        for name, value in (
            ("itopk", getattr(args, "itopk", None)),
            ("search_width", getattr(args, "search_width", None)),
            ("max_iterations", getattr(args, "max_iterations", None)),
            ("team_size", getattr(args, "team_size", None)),
            ("precision", getattr(args, "precision", None)),
        )
        if value is not None
    }
    return config.with_overrides(**overrides) if overrides else config


def _add_parallel_args(parser: argparse.ArgumentParser, shards: bool = True) -> None:
    if shards:
        parser.add_argument("--shards", type=int, default=1,
                            help="split into N independent sub-indexes (multi-GPU sharding)")
    parser.add_argument("--num-workers", type=int, default=0,
                        help="shard worker-pool size (0 = one per available CPU)")
    parser.add_argument("--backend", choices=("auto", "serial", "thread", "process"),
                        default="auto", help="shard execution backend")
    parser.add_argument("--fault-plan", default="",
                        help="deterministic fault-injection plan, JSON or @path "
                             "(default: the REPRO_FAULT_PLAN environment variable)")


def _add_degradation_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--on-shard-failure", choices=("raise", "partial"),
                        default="raise",
                        help="sharded-index failure policy: fail the query or "
                             "merge the surviving shards (degraded result)")
    parser.add_argument("--min-quorum", type=int, default=1,
                        help="minimum shards that must answer before a "
                             "degraded result is acceptable")


def _parallel_config(args):
    from repro.parallel import ParallelConfig

    return ParallelConfig(
        num_workers=args.num_workers,
        backend=args.backend,
        fault_plan=getattr(args, "fault_plan", ""),
    )


def _load_index(path: str, args=None):
    """Load a saved index of any kind through the repro.api registry.

    Format detection (sharded vs monolithic CAGRA, the baseline kinds)
    lives in :func:`repro.api.sniff_format`; the ``index.load`` fault
    point fires once per load so load-path failure handling (bad file,
    missing volume) stays testable via a fault plan.
    """
    from repro.api import load_index

    return load_index(
        path,
        parallel=_parallel_config(args) if args is not None else None,
        fault_plan=getattr(args, "fault_plan", "") if args is not None else "",
    )


def _load(args) -> tuple[np.ndarray, np.ndarray, str, int]:
    """Returns (data, queries, metric, graph_degree)."""
    if args.fvecs:
        data = read_fvecs(args.fvecs)
        from repro.datasets import make_queries

        return data, make_queries(data, args.queries, seed=args.seed + 1), "sqeuclidean", 32
    bundle = load_dataset(args.dataset, scale=args.scale, num_queries=args.queries, seed=args.seed)
    return bundle.data, bundle.queries, bundle.spec.metric, bundle.spec.graph_degree


def _cmd_info(args) -> int:
    print(f"{'name':<12}{'dim':>6}{'orig N':>12}{'metric':>15}{'degree':>8}{'default scale':>15}")
    for spec in DATASETS.values():
        print(
            f"{spec.name:<12}{spec.dim:>6}{spec.original_size:>12,}"
            f"{spec.metric:>15}{spec.graph_degree:>8}{spec.default_scale:>15,}"
        )
    return 0


def _cmd_build(args) -> int:
    data, _, metric, degree = _load(args)
    if args.index_kind != "cagra":
        from repro.api import save_index

        started = time.perf_counter()
        adapter = build_index(
            args.index_kind, data,
            metric=metric, degree=args.degree, seed=args.seed,
            parallel=_parallel_config(args),
        )
        elapsed = time.perf_counter() - started
        save_index(adapter, args.out)
        print(f"built {adapter!r} in {elapsed:.2f}s")
        print(f"saved to {args.out}")
        return 0
    config = GraphBuildConfig(
        graph_degree=args.degree or degree,
        metric=metric,
        reordering=args.reordering,
        seed=args.seed,
    )
    started = time.perf_counter()
    if args.shards > 1:
        from repro.core.sharding import ShardedCagraIndex

        index = ShardedCagraIndex.build(
            data, args.shards, config,
            dataset_dtype=args.dtype, parallel=_parallel_config(args),
        )
        elapsed = time.perf_counter() - started
        index.save(args.out)
        print(f"built {index!r} in {elapsed:.2f}s "
              f"({args.shards} shard(s), backend={args.backend}, "
              f"workers={args.num_workers or 'auto'})")
        print(f"saved to {args.out}")
        return 0
    index = CagraIndex.build(data, config, dataset_dtype=args.dtype)
    elapsed = time.perf_counter() - started
    index.save(args.out)
    report = index.build_report
    print(f"built {index!r} in {elapsed:.2f}s "
          f"(knn {report.knn_seconds:.2f}s + optimize {report.optimize_seconds:.2f}s)")
    print(f"saved to {args.out}")
    return 0


def _cmd_search(args) -> int:
    data, queries, metric, degree = _load(args)
    if args.index:
        ann = as_ann_index(
            _load_index(args.index, args),
            on_shard_failure=args.on_shard_failure,
            min_shard_quorum=args.min_quorum,
        )
    elif args.index_kind:
        ann = build_index(
            args.index_kind, data,
            metric=metric, degree=args.degree, seed=args.seed,
            parallel=_parallel_config(args),
            on_shard_failure=args.on_shard_failure,
            min_shard_quorum=args.min_quorum,
        )
    else:
        print("search needs --index (saved file) or --index-kind (build fresh)",
              file=sys.stderr)
        return 2
    profile = _resolve_profile_arg(
        args, ann.dataset, getattr(ann, "kind", "cagra"), args.k
    )
    config = _search_config(args, profile, algo=args.algo, seed=args.seed)
    started = time.perf_counter()
    result = ann.search(
        queries, args.k, config=config,
        mode="fast" if args.fast else "reference",
    )
    elapsed = time.perf_counter() - started
    truth, _ = exact_search(ann.dataset, queries, args.k, metric=ann.metric)
    measured_recall = recall_of(result.indices, truth)
    algo = result.counters.get("algo", "unknown")
    total_dc = result.counters.get("distance_computations", 0)
    per_query = total_dc / queries.shape[0]
    degraded = bool(result.degraded)
    if args.format == "json":
        payload = {
            "queries": int(queries.shape[0]),
            "k": args.k,
            "itopk": config.itopk,
            "search_width": config.search_width,
            "max_iterations": config.max_iterations,
            "team_size": config.team_size,
            "precision": config.precision,
            "profile": args.profile or None,
            "tuned": profile is not None,
            "algo": algo,
            "index_kind": getattr(ann, "kind", "unknown"),
            "fast_path": bool(args.fast),
            "elapsed_seconds": elapsed,
            "recall": measured_recall,
            "distance_computations_per_query": per_query,
            "degraded": degraded,
        }
        if degraded:
            payload["failed_shards"] = list(result.failed_shards)
            payload["skipped_shards"] = list(result.skipped_shards)
        print(json.dumps(payload, indent=2))
        return 0
    print(f"searched {queries.shape[0]} queries in {elapsed:.3f}s (python wall time)")
    source = "tuned profile" if profile is not None else "defaults/flags"
    print(f"params ({source}): itopk={config.itopk} "
          f"search_width={config.search_width} "
          f"max_iterations={config.max_iterations or 'auto'} "
          f"team_size={config.team_size or 'auto'} "
          f"precision={config.precision}")
    print(f"recall@{args.k}: {measured_recall:.4f}")
    print(f"distance computations/query: {per_query:.0f}")
    if degraded:
        print(f"DEGRADED: failed shards {list(result.failed_shards)}, "
              f"skipped shards {list(result.skipped_shards)}")
    return 0


def _subject_curve(args, subject, data, queries, truth, sweep, base_config=None):
    """Recall–QPS curve for the ``--index-kind`` subject index."""
    from repro.bench import (
        MethodCurve,
        SweepPoint,
        run_beam_sweep_cpu,
        run_beam_sweep_gpu,
        run_cagra_sweep,
        run_hnsw_sweep,
    )

    kind = args.index_kind
    inner = subject.inner
    if kind == "cagra":
        return run_cagra_sweep(
            inner, queries, truth, args.k, sweep, args.batch,
            base_config=base_config,
        )
    if kind == "hnsw":
        return run_hnsw_sweep(inner, queries, truth, args.k, sweep, args.batch)
    if kind in ("ggnn", "ganns"):
        return run_beam_sweep_gpu(
            kind.upper(),
            lambda q, k, beam: inner.search(q, k, beam_width=beam),
            queries, truth, args.k, sweep, args.batch,
            dim=data.shape[1], degree=getattr(inner, "degree", 24),
        )
    if kind == "nssg":
        return run_beam_sweep_cpu(
            "NSSG",
            lambda q, k, beam: inner.search(q, k, beam_width=beam),
            queries, truth, args.k, sweep, args.batch,
            dim=data.shape[1],
        )
    # Brute force is exact: one point, recall 1.0, CPU-scan pricing.
    from repro.gpusim import CpuCostModel

    result = subject.search(queries, args.k)
    dc = int(result.counters["distance_computations"])
    factor = args.batch / queries.shape[0]
    timing = CpuCostModel().search_time(
        int(dc * factor), 0, data.shape[1], args.batch
    )
    return MethodCurve(method="BruteForce", points=[SweepPoint(
        param=args.k,
        recall=recall_of(result.indices, truth),
        qps=timing.qps(args.batch),
        seconds=timing.seconds,
        distance_computations_per_query=dc / queries.shape[0],
    )])


def _cmd_bench(args) -> int:
    from repro.api import StageRecorder
    from repro.baselines import HnswIndex
    from repro.bench import (
        format_curve_table,
        run_hnsw_sweep,
        speedup_at_recall,
    )

    data, queries, metric, degree = _load(args)
    truth, _ = exact_search(data, queries, args.k, metric=metric)
    if args.format == "text":
        print(f"dataset: {args.dataset} n={data.shape[0]} dim={data.shape[1]} metric={metric}")
    recorder = StageRecorder()
    subject = build_index(
        args.index_kind, data,
        metric=metric, degree=args.degree or degree,
        on_stage=recorder.on_stage,
    )
    # One instrumented probe search so the report carries per-stage
    # search timings next to the build stage (sweeps below use the
    # native paths the cost models price).
    subject.search(queries, args.k, on_stage=recorder.on_stage)
    profile = _resolve_profile_arg(args, subject.dataset, args.index_kind, args.k)
    base_search = _search_config(args, profile)
    sweep = sorted({max(args.k, v) for v in (10, 16, 32, 64, 128)})
    if profile is not None and args.index_kind == "cagra":
        # Make sure the tuned operating point itself appears on the curve.
        sweep = sorted(set(sweep) | {profile.chosen.itopk})
    curves = [_subject_curve(args, subject, data, queries, truth, sweep,
                             base_config=base_search)]
    # The paper's CPU comparator; redundant when it *is* the subject.
    if args.index_kind != "hnsw":
        hnsw = HnswIndex(
            data, m=args.hnsw_m, ef_construction=args.hnsw_efc, metric=metric
        ).build()
        curves.append(
            run_hnsw_sweep(hnsw, queries, truth, args.k, sweep, args.batch)
        )
    if args.format == "json":
        from dataclasses import asdict

        subject_curve = curves[0]
        speedups = {}
        if len(curves) > 1:
            for target in (0.90, 0.95):
                ours = subject_curve.qps_at_recall(target)
                theirs = curves[1].qps_at_recall(target)
                speedups[f"{target:.2f}"] = (
                    ours / theirs if ours is not None and theirs is not None else None
                )
        print(json.dumps({
            "dataset": args.dataset,
            "n": int(data.shape[0]),
            "dim": int(data.shape[1]),
            "metric": metric,
            "batch": args.batch,
            "k": args.k,
            "index_kind": args.index_kind,
            "profile": args.profile or None,
            "search_width": base_search.search_width,
            "max_iterations": base_search.max_iterations,
            "hnsw": {"m": args.hnsw_m, "ef_construction": args.hnsw_efc},
            "curves": [asdict(curve) for curve in curves],
            "speedup_vs_hnsw_at_recall": speedups,
            "stages": recorder.as_records(),
        }, indent=2))
        return 0
    print(format_curve_table(curves, f"batch={args.batch} recall@{args.k}"))
    if len(curves) > 1:
        print()
        print(speedup_at_recall(curves, "HNSW", [0.90, 0.95]))
    return 0


def _serving_index(args, data, metric, degree):
    """Load or build the index a serve/route invocation will front."""
    if args.index:
        return _load_index(args.index, args)
    if args.index_kind != "cagra":
        return build_index(
            args.index_kind, data,
            metric=metric, degree=args.degree,
            parallel=_parallel_config(args),
        )
    if args.shards > 1:
        from repro.core.sharding import ShardedCagraIndex

        return ShardedCagraIndex.build(
            data, args.shards,
            GraphBuildConfig(graph_degree=args.degree or degree, metric=metric),
            parallel=_parallel_config(args),
        )
    return CagraIndex.build(
        data, GraphBuildConfig(graph_degree=args.degree or degree, metric=metric)
    )


def _cmd_serve(args) -> int:
    from repro.serve import (
        CagraServer,
        ServeConfig,
        run_closed_loop,
        run_open_loop,
    )

    if getattr(args, "replicas", 1) > 1:
        # A replica fleet is the router's job; same flags, fleet semantics.
        return _cmd_route(args)
    data, queries, metric, degree = _load(args)
    index = _serving_index(args, data, metric, degree)
    profile = _resolve_profile_arg(
        args,
        getattr(index, "dataset", data),
        getattr(index, "kind", args.index_kind or "cagra"),
        args.k,
    )
    search_config = _search_config(args, profile, seed=args.seed)
    if args.mutable:
        from repro.stream import MutableIndex

        index = MutableIndex(index, wal_dir=args.wal_dir or None,
                             fault_plan=args.fault_plan)
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        default_timeout_ms=args.timeout_ms,
        cache_capacity=args.cache_capacity,
        default_k=args.k,
        on_shard_failure=args.on_shard_failure,
        min_shard_quorum=args.min_quorum,
        breaker_failure_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        fault_plan=args.fault_plan,
        auto_rebuild=args.mutable and args.auto_rebuild,
        rebuild_interval_s=args.rebuild_interval_s,
        rebuild_calibrate=args.rebuild_calibrate,
    )
    num_requests = args.requests or max(1, int(args.rate * args.duration))
    server = CagraServer(index, config, search_config=search_config)
    with server:
        if args.mode == "open":
            report = run_open_loop(
                server, queries, rate_qps=args.rate,
                num_requests=num_requests, seed=args.seed,
            )
        else:
            per_client = max(1, num_requests // args.clients)
            report = run_closed_loop(
                server, queries, num_clients=args.clients,
                requests_per_client=per_client,
            )
        health = server.health()  # before stop: reflects the run, not shutdown
    stats = server.stats()

    # The AnnIndex surface gives dataset/metric uniformly for any kind.
    ann = server.ann_index
    truth, _ = exact_search(ann.dataset, queries, args.k, metric=ann.metric)
    if report.results:
        rows = np.array([row for row, _ in report.results], dtype=np.int64)
        found = np.stack([found_ids for _, found_ids in report.results])
        served_recall = recall_of(found, truth[rows])
    else:
        served_recall = 0.0

    if args.format == "json":
        payload = {
            "mode": report.mode,
            "offered_rate_qps": args.rate if args.mode == "open" else None,
            "requests": num_requests,
            "submitted": report.submitted,
            "completed": report.completed,
            "rejected": report.rejected,
            "timed_out": report.timed_out,
            "failed": report.failed,
            "duration_seconds": report.duration_seconds,
            "achieved_qps": report.achieved_qps,
            "latency_ms": {
                "p50": report.latency_percentile_ms(50),
                "p95": report.latency_percentile_ms(95),
                "p99": report.latency_percentile_ms(99),
            },
            "recall": served_recall,
            "stats": stats.to_dict(),
            "health": health,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"serving {index!r}")
        print(f"  scheduler: max_batch={config.max_batch} "
              f"max_wait={config.max_wait_ms}ms queue={config.queue_capacity} "
              f"timeout={config.default_timeout_ms}ms cache={config.cache_capacity}")
        print(report.summary())
        print(f"recall@{args.k} (served vs exact): {served_recall:.4f}")
        print(stats.summary())
        if health["status"] != "ok" or health["open_shards"]:
            print(f"health: {health['status']}  "
                  f"open_shards={health['open_shards']}  "
                  f"failure_rate={health['recent_failure_rate']:.3f}")
    return 1 if report.failed > 0 else 0


def _cmd_route(args) -> int:
    """Replicated fleet under seeded Zipfian multi-tenant load.

    Builds one index, fronts it with ``--replicas`` servers behind a
    :class:`repro.router.ShardRouter`, replays a seeded multi-tenant
    schedule through the closed-loop fleet load generator, and reports
    fleet stats, health, served recall, and — when quotas are on — the
    exact reconciliation of observed quota rejections against the
    reference token-bucket simulation.  Chaos knobs: ``--kill-replica``
    murders one replica mid-load, ``--rolling-swap`` upgrades the fleet
    to a freshly built index mid-load.

    Route-only knobs are read with defaults so ``serve --replicas N``
    (which lacks them) can delegate here unchanged.
    """
    import threading

    from repro.router import (
        RouterConfig,
        ShardRouter,
        expected_quota_outcomes,
        run_fleet_closed_loop,
    )
    from repro.serve import ServeConfig, make_zipf_schedule

    data, queries, metric, degree = _load(args)
    index = _serving_index(args, data, metric, degree)
    profile = _resolve_profile_arg(
        args,
        getattr(index, "dataset", data),
        getattr(index, "kind", args.index_kind or "cagra"),
        args.k,
    )
    search_config = _search_config(args, profile, seed=args.seed)
    serve_config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_capacity=args.queue_capacity,
        default_timeout_ms=args.timeout_ms,
        cache_capacity=args.cache_capacity,
        default_k=args.k,
        on_shard_failure=args.on_shard_failure,
        min_shard_quorum=args.min_quorum,
    )
    router_config = RouterConfig(
        dispatch=getattr(args, "dispatch", "load_aware"),
        hedge=not getattr(args, "no_hedge", False),
        hedge_delay_ms=getattr(args, "hedge_delay_ms", 0.0),
        hedge_latency_factor=getattr(args, "hedge_factor", 2.0),
        hedge_jitter_ms=getattr(args, "hedge_jitter_ms", 0.0),
        max_attempts=getattr(args, "max_attempts", 3),
        quota_rate_qps=getattr(args, "quota_rate", 0.0),
        quota_burst=getattr(args, "quota_burst", 10.0),
        breaker_failure_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
        seed=args.seed,
        fault_plan=args.fault_plan,
    )
    num_requests = args.requests or max(1, int(args.rate * args.duration))
    schedule = make_zipf_schedule(
        num_requests,
        num_tenants=getattr(args, "tenants", 4),
        num_query_rows=queries.shape[0],
        rate_qps=args.rate,
        zipf_s=getattr(args, "zipf_s", 1.1),
        seed=args.seed,
    )
    router = ShardRouter.build(
        index,
        num_replicas=args.replicas,
        config=router_config,
        serve_config=serve_config,
        search_config=search_config,
    )
    kill_replica = getattr(args, "kill_replica", -1)
    chaos_after_s = getattr(args, "chaos_after_s", 0.2)
    rolling_swap = getattr(args, "rolling_swap", False)
    timers: list[threading.Timer] = []
    swap_index = None
    if rolling_swap:
        # Built up front so mid-load chaos measures the swap, not a build.
        swap_index = CagraIndex.build(
            data, GraphBuildConfig(graph_degree=args.degree or degree, metric=metric)
        )
    with router:
        if kill_replica >= 0:
            timers.append(
                threading.Timer(chaos_after_s, router.kill_replica, [kill_replica])
            )
        if swap_index is not None:
            timers.append(
                threading.Timer(chaos_after_s, router.rolling_swap, [swap_index])
            )
        for timer in timers:
            timer.start()
        report = run_fleet_closed_loop(
            router,
            queries,
            schedule,
            num_clients=args.clients,
            k=args.k,
            timeout_ms=args.timeout_ms or None,
            pace=getattr(args, "pace", False),
        )
        for timer in timers:
            timer.cancel()
            timer.join()
        health = router.health()
    stats = router.stats()

    truth, _ = exact_search(data, queries, args.k, metric=metric)
    ok_mask = report.outcome == "ok"
    if ok_mask.any():
        rows = schedule.query_rows[ok_mask] % queries.shape[0]
        served_recall = recall_of(report.indices[ok_mask], truth[rows])
    else:
        served_recall = 0.0

    quota_check = None
    if router_config.quota_rate_qps > 0.0:
        expected = expected_quota_outcomes(
            schedule, router_config.quota_rate_qps, router_config.quota_burst
        )
        quota_check = {
            "expected": expected,
            "observed": dict(report.per_tenant_quota_rejected),
            "exact_match": expected == {
                t: report.per_tenant_quota_rejected.get(t, 0) for t in expected
            },
        }

    if args.format == "json":
        payload = {
            "replicas": args.replicas,
            "dispatch": router_config.dispatch,
            "hedge": router_config.hedge,
            "requests": num_requests,
            "tenants": schedule.num_tenants,
            "ok": report.ok,
            "quota_rejected": report.quota_rejected,
            "timed_out": report.timed_out,
            "failed": report.failed,
            "hedged": report.hedged,
            "hedge_wins": report.hedge_wins,
            "duration_seconds": report.duration_seconds,
            "latency_ms": {
                "p50": report.latency_percentile_ms(50),
                "p95": report.latency_percentile_ms(95),
                "p99": report.latency_percentile_ms(99),
            },
            "recall": served_recall,
            "quota_check": quota_check,
            "stats": stats.to_dict(),
            "health": health.to_dict(),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(
            f"routing over {args.replicas} replicas "
            f"(dispatch={router_config.dispatch}, hedge={router_config.hedge}, "
            f"tenants={schedule.num_tenants})"
        )
        print(report.summary())
        print(f"recall@{args.k} (served vs exact): {served_recall:.4f}")
        if quota_check is not None:
            verdict = "exact" if quota_check["exact_match"] else "MISMATCH"
            print(f"quota rejections vs token-bucket model: {verdict} "
                  f"({report.quota_rejected} rejected)")
        print(stats.summary())
        if health.status != "ok":
            print(f"fleet health: {health.status}  "
                  f"open_breakers={health.open_breakers}")
    return 1 if report.failed > 0 else 0


def _cmd_stream(args) -> int:
    """Mutable-index lifecycle demo: mixed writes against a live server.

    Reserves the tail of the dataset as an insert pool, builds the CAGRA
    base from the rest, wraps it in a :class:`~repro.stream.MutableIndex`
    and drives a seeded closed loop of interleaved searches, inserts and
    deletes while the background rebuilder folds the memtable back into
    the graph.  Reports freshness, final recall against a brute-force
    oracle over the *live* rows, and every policy decision taken.
    """
    from repro.api import BruteForceIndex
    from repro.core.graph import INDEX_MASK
    from repro.serve import CagraServer, ServeConfig
    from repro.stream import MutableIndex, run_mixed_closed_loop

    data, queries, metric, degree = _load(args)
    pool_rows = min(max(args.clients, args.insert_pool), data.shape[0] // 2)
    base_data, pool = data[:-pool_rows], data[-pool_rows:]
    core = CagraIndex.build(
        base_data,
        GraphBuildConfig(graph_degree=args.degree or degree, metric=metric,
                         seed=args.seed),
    )
    index = MutableIndex(core, wal_dir=args.wal_dir or None,
                         fault_plan=args.fault_plan)
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        default_k=args.k,
        cache_capacity=args.cache_capacity,
        auto_rebuild=args.auto_rebuild,
        rebuild_interval_s=args.rebuild_interval_s,
        rebuild_min_memtable_rows=args.rebuild_min_rows,
        rebuild_calibrate=args.rebuild_calibrate,
    )
    server = CagraServer(
        index, config, search_config=_search_config(args, seed=args.seed)
    )
    with server:
        report = run_mixed_closed_loop(
            server, queries, pool,
            num_clients=args.clients,
            ops_per_client=max(1, args.ops // args.clients),
            write_fraction=args.write_fraction,
            delete_fraction=args.delete_fraction,
            seed=args.seed,
        )
        rebuilder = server.rebuilder
        decisions = list(rebuilder.history()) if rebuilder is not None else []
    stats = server.stats()
    freshness = index.freshness()

    # Score the final state against an exact oracle over the live rows.
    oracle = BruteForceIndex(index.dataset, metric=index.metric)
    live = index.live_mask()
    truth = oracle.search(queries, args.k, filter_mask=live)
    got = index.search(queries, args.k)
    final_recall = recall_of(got.indices, truth.indices)
    served = {int(i) for row in got.indices for i in row if int(i) != int(INDEX_MASK)}
    dead_served = sorted(i for i in served if not live[i])
    decision_rows = [
        {
            "action": decision.action,
            "reason": decision.reason,
            "memtable_rows": decision.memtable_rows,
            "tombstone_ratio": decision.tombstone_ratio,
            "est_incremental_s": decision.est_incremental_s,
            "est_full_s": decision.est_full_s,
            "applied": report_.action if report_ is not None else None,
            "promote_latency_ms": latency * 1e3,
        }
        for decision, report_, latency in decisions
    ]
    if args.format == "json":
        payload = {
            "ops": report.ops,
            "searches": report.searches,
            "inserts": report.inserts,
            "deletes": report.deletes,
            "failures": report.failures,
            "duration_seconds": report.duration_seconds,
            "search_latency_ms": {
                "p50": report.latency_percentile_ms(50),
                "p95": report.latency_percentile_ms(95),
            },
            "final_recall_vs_live_oracle": final_recall,
            "deleted_ids_served_after_run": dead_served,
            "freshness": {
                "base_rows": freshness.base_rows,
                "memtable_rows": freshness.memtable_rows,
                "tombstone_rows": freshness.tombstone_rows,
                "live_rows": freshness.live_rows,
                "tombstone_ratio": freshness.tombstone_ratio,
                "epoch": freshness.epoch,
                "wal_seq": freshness.wal_seq,
            },
            "decisions": decision_rows,
            "stats": stats.to_dict(),
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"streaming over {core!r} (+{pool_rows}-row insert pool)")
        print(report.summary())
        print(f"final recall@{args.k} vs live brute-force oracle: {final_recall:.4f}")
        print(f"freshness: base={freshness.base_rows} "
              f"memtable={freshness.memtable_rows} "
              f"tombstones={freshness.tombstone_rows} "
              f"live={freshness.live_rows} epoch={freshness.epoch} "
              f"wal_seq={freshness.wal_seq}")
        if decision_rows:
            print("rebuilder decisions:")
            for row in decision_rows:
                applied = row["applied"] or "skipped"
                print(f"  {row['action']:<12} -> {applied:<12} "
                      f"({row['reason']}; memtable={row['memtable_rows']} "
                      f"tombstones={row['tombstone_ratio']:.2f} "
                      f"promote={row['promote_latency_ms']:.1f}ms)")
        print(stats.summary())
    if dead_served:
        print(f"ERROR: deleted ids served after the run: {dead_served}",
              file=sys.stderr)
        return 1
    return 1 if report.failures > 0 else 0


def _parse_grid(spec: str, flag: str) -> tuple[int, ...] | None:
    """``"16,32,64"`` → ``(16, 32, 64)``; empty → None (grid default)."""
    if not spec:
        return None
    try:
        values = tuple(int(part) for part in spec.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"{flag} expects comma-separated integers, got {spec!r}")
    if not values:
        raise SystemExit(f"{flag} expects at least one value")
    return values


def _cmd_tune(args) -> int:
    """Offline auto-tune: sweep the grid, report the frontier, save a profile."""
    import os

    from repro.tune import (
        TuneGrid,
        default_profile_dir,
        profile_filename,
        tune_search_params,
    )

    data, queries, metric, degree = _load(args)
    if args.index:
        index = CagraIndex.load(args.index)
    else:
        index = CagraIndex.build(
            data,
            GraphBuildConfig(graph_degree=args.degree or degree, metric=metric,
                             seed=args.seed),
        )
    grid_kwargs = {}
    itopk_values = _parse_grid(args.itopk_grid, "--itopk-grid")
    width_values = _parse_grid(args.width_grid, "--width-grid")
    if itopk_values:
        grid_kwargs["itopk_values"] = itopk_values
    if width_values:
        grid_kwargs["search_widths"] = width_values
    profile = tune_search_params(
        index,
        k=args.k,
        recall_target=args.recall_target,
        queries=queries,
        grid=TuneGrid(**grid_kwargs),
        batch_size=args.batch,
        base_config=SearchConfig(seed=args.seed),
        created=time.strftime("%Y-%m-%d"),
    )
    out = args.out or os.path.join(
        default_profile_dir(),
        profile_filename(profile.fingerprint, profile.index_kind, profile.k),
    )
    profile.save(out)
    if args.format == "json":
        print(json.dumps({"path": out, "profile": profile.to_dict()}, indent=2))
        return 0
    print(f"tuned {index!r} for recall@{args.k} >= {args.recall_target} "
          f"(simulated batch {args.batch}, {queries.shape[0]} queries)")
    print(f"{'itopk':>6} {'width':>6} {'max_it':>7} {'recall':>8} {'QPS':>14}")
    for point in profile.sweep:
        marker = " <= chosen" if point == profile.chosen else ""
        print(f"{point.itopk:>6} {point.search_width:>6} "
              f"{point.max_iterations or 'auto':>7} {point.recall:>8.4f} "
              f"{point.qps:>14,.0f}{marker}")
    print(f"baseline (itopk={profile.baseline.itopk}): "
          f"recall {profile.baseline.recall:.4f}, "
          f"QPS {profile.baseline.qps:,.0f}")
    print(f"chosen: itopk={profile.chosen.itopk} "
          f"search_width={profile.chosen.search_width} "
          f"max_iterations={profile.chosen.max_iterations or 'auto'} "
          f"-> {profile.speedup():.2f}x baseline QPS")
    if not profile.meets_target:
        print(f"WARNING: no grid point reached recall {args.recall_target}; "
              f"profile records the best-recall point "
              f"({profile.chosen.recall:.4f})", file=sys.stderr)
    print(f"saved to {out}")
    return 0


def _cmd_validate(args) -> int:
    from repro import validate_index

    # FixedDegreeGraph refuses to construct from ids that are out of
    # range, so a corrupt file fails at load time — report it as an
    # audit failure rather than a traceback.
    try:
        index = CagraIndex.load(args.index)
    except (ValueError, OSError, KeyError) as exc:
        print(f"index INVALID: failed to load {args.index!r}: {exc}",
              file=sys.stderr)
        return 1
    report = validate_index(index, sample=args.sample)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_lint(args) -> int:
    """Exit-code contract: 0 clean (or violations without ``--strict``),
    1 violations under ``--strict`` / any sanitizer report, 2 internal
    error (unreadable path, parse failure, crashed rule).  The report —
    including ``--format json`` — is emitted in every case."""
    from repro.lint import format_json, format_text, lint_paths

    if args.sanitize:
        return _run_sanitized(args)
    try:
        result = lint_paths(args.paths or None)
    except Exception as exc:  # crashed rule/engine: still honour --format
        if args.format == "json":
            print(json.dumps({"error": f"{type(exc).__name__}: {exc}"}, indent=2))
        print(f"internal error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(result.violations, result.files_checked,
                          result.parse_errors))
    else:
        print(format_text(result.violations, result.files_checked))
    for error in result.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    if result.parse_errors:
        return 2
    if args.strict and result.violations:
        return 1
    return 0


def _run_sanitized(args) -> int:
    """``lint --sanitize``: run pytest in-process under the
    thread-sanitizer-lite instrumentation and report RL301/RL302.

    Positional PATH arguments are forwarded to pytest.  Always strict:
    any potential-deadlock or tagged-race report exits 1; a failing or
    unrunnable test session exits 2 (the run proved nothing).
    """
    from repro.lint import format_json, format_text
    from repro.lint.sanitizer import ThreadSanitizer

    try:
        import pytest
    except ImportError:
        print("internal error: --sanitize needs pytest", file=sys.stderr)
        return 2
    sanitizer = ThreadSanitizer()
    with sanitizer:
        test_exit = pytest.main(["-q", *args.paths])
    violations = sanitizer.violations()
    if args.format == "json":
        print(format_json(violations, files_checked=0))
    else:
        print(format_text(violations, files_checked=0))
    if int(test_exit) != 0:
        print(f"internal error: pytest exited {int(test_exit)}", file=sys.stderr)
        return 2
    return 1 if violations else 0


def _cmd_report(args) -> int:
    import glob
    import os

    pattern = os.path.join(args.results, "*.txt")
    files = sorted(glob.glob(pattern))
    if not files:
        print(f"no result files under {args.results!r}; "
              "run: pytest benchmarks/ --benchmark-only")
        return 1
    for path in files:
        print(f"===== {os.path.basename(path)[:-4]} =====")
        with open(path) as handle:
            print(handle.read())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cagra",
        description="CAGRA reproduction: build, search, and benchmark ANN graph indexes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list registered datasets")

    p_build = sub.add_parser("build", help="build an ANN index")
    _add_dataset_args(p_build)
    p_build.add_argument("--out", required=True, help="output .npz path")
    p_build.add_argument("--index-kind", choices=INDEX_KINDS, default="cagra",
                         help="index family to build (repro.api factory)")
    p_build.add_argument("--degree", type=int, default=0, help="graph degree (0 = dataset default)")
    p_build.add_argument("--reordering", choices=("rank", "distance", "none"), default="rank")
    p_build.add_argument("--dtype", choices=("float32", "float16"), default="float32")
    _add_parallel_args(p_build)

    p_search = sub.add_parser("search", help="search a saved (or freshly built) index")
    _add_dataset_args(p_search)
    p_search.add_argument("--index", default="",
                          help="index .npz path (omit to build one with --index-kind)")
    p_search.add_argument("--index-kind", choices=INDEX_KINDS, default="",
                          help="build this kind fresh when no --index is given")
    p_search.add_argument("--degree", type=int, default=0,
                          help="graph degree for --index-kind builds (0 = kind default)")
    p_search.add_argument("-k", type=int, default=10)
    _add_search_param_args(p_search)
    p_search.add_argument("--algo", choices=("auto", "single_cta", "multi_cta"), default="auto")
    p_search.add_argument("--fast", action="store_true",
                          help="use the vectorized lockstep batch search")
    p_search.add_argument("--format", choices=("text", "json"), default="text")
    _add_parallel_args(p_search, shards=False)
    _add_degradation_args(p_search)

    p_bench = sub.add_parser("bench", help="recall/QPS sweep of any index kind vs HNSW")
    _add_dataset_args(p_bench)
    p_bench.add_argument("--index-kind", choices=INDEX_KINDS, default="cagra",
                         help="subject index family for the sweep")
    p_bench.add_argument("-k", type=int, default=10)
    _add_search_param_args(p_bench)
    p_bench.add_argument("--degree", type=int, default=0)
    p_bench.add_argument("--batch", type=int, default=10000, help="simulated batch size")
    p_bench.add_argument("--hnsw-m", type=int, default=16,
                         help="HNSW comparator: connections per node")
    p_bench.add_argument("--hnsw-efc", type=int, default=100,
                         help="HNSW comparator: ef_construction")
    p_bench.add_argument("--format", choices=("text", "json"), default="text")

    p_serve = sub.add_parser(
        "serve", help="run the online serving layer under a seeded load generator"
    )
    _add_dataset_args(p_serve)
    p_serve.add_argument("--index", default="",
                         help="serve a saved index .npz instead of building one")
    p_serve.add_argument("--index-kind", choices=INDEX_KINDS, default="cagra",
                         help="index family to build and serve")
    p_serve.add_argument("-k", type=int, default=10)
    p_serve.add_argument("--degree", type=int, default=0)
    _add_search_param_args(p_serve)
    p_serve.add_argument("--rate", type=float, default=500.0,
                         help="open-loop Poisson arrival rate (qps)")
    p_serve.add_argument("--duration", type=float, default=2.0,
                         help="load duration in seconds (rate * duration requests)")
    p_serve.add_argument("--requests", type=int, default=0,
                         help="explicit request count (overrides --duration)")
    p_serve.add_argument("--mode", choices=("open", "closed"), default="open")
    p_serve.add_argument("--clients", type=int, default=8,
                         help="closed-loop concurrent clients")
    p_serve.add_argument("--max-batch", type=int, default=64)
    p_serve.add_argument("--max-wait-ms", type=float, default=2.0)
    p_serve.add_argument("--queue-capacity", type=int, default=256)
    p_serve.add_argument("--timeout-ms", type=float, default=0.0,
                         help="per-request deadline (0 = none)")
    p_serve.add_argument("--cache-capacity", type=int, default=1024,
                         help="LRU result-cache entries (0 disables)")
    p_serve.add_argument("--format", choices=("text", "json"), default="text")
    _add_parallel_args(p_serve)
    _add_degradation_args(p_serve)
    p_serve.add_argument("--breaker-threshold", type=int, default=0,
                         help="consecutive shard failures that open its "
                              "circuit breaker (0 disables breakers)")
    p_serve.add_argument("--breaker-cooldown-s", type=float, default=30.0,
                         help="open-breaker cooldown before a half-open probe")
    p_serve.add_argument("--mutable", action="store_true",
                         help="wrap the index in repro.stream.MutableIndex so "
                              "the server accepts insert/delete")
    p_serve.add_argument("--wal-dir", default="",
                         help="write-ahead-log directory for --mutable "
                              "(empty = no durability)")
    p_serve.add_argument("--auto-rebuild", action="store_true",
                         help="with --mutable: run the background rebuilder "
                              "(staleness policy + atomic promotion)")
    p_serve.add_argument("--rebuild-interval-s", type=float, default=0.5,
                         help="staleness-policy evaluation period")
    p_serve.add_argument("--rebuild-calibrate", action="store_true",
                         help="seed the rebuild cost model with micro-probes")
    p_serve.add_argument("--replicas", type=int, default=1,
                         help="front N replica servers with the shard router "
                              "(> 1 delegates to the route command)")

    p_route = sub.add_parser(
        "route",
        help="replicated shard router: hedged requests, per-tenant quotas, "
             "fleet health, rolling upgrades (docs/router.md)",
    )
    _add_dataset_args(p_route)
    p_route.add_argument("--index", default="",
                         help="serve a saved index .npz instead of building one")
    p_route.add_argument("--index-kind", choices=INDEX_KINDS, default="cagra",
                         help="index family to build and serve")
    p_route.add_argument("-k", type=int, default=10)
    p_route.add_argument("--degree", type=int, default=0)
    _add_search_param_args(p_route)
    _add_parallel_args(p_route)
    _add_degradation_args(p_route)
    p_route.add_argument("--replicas", type=int, default=3,
                         help="fleet size (replica servers over one index)")
    p_route.add_argument("--dispatch", choices=("load_aware", "round_robin"),
                         default="load_aware", help="replica-selection policy")
    p_route.add_argument("--no-hedge", action="store_true",
                         help="disable hedged (backup) requests")
    p_route.add_argument("--hedge-delay-ms", type=float, default=0.0,
                         help="fixed hedge delay (0 = derive from the "
                              "primary's latency EWMA)")
    p_route.add_argument("--hedge-factor", type=float, default=2.0,
                         help="EWMA multiplier for derived hedge delays")
    p_route.add_argument("--hedge-jitter-ms", type=float, default=0.0,
                         help="seeded deterministic jitter added to every "
                              "hedge delay")
    p_route.add_argument("--max-attempts", type=int, default=3,
                         help="sequential dispatch attempts per request "
                              "(primary + failovers)")
    p_route.add_argument("--tenants", type=int, default=4,
                         help="tenant count for the Zipfian schedule")
    p_route.add_argument("--zipf-s", type=float, default=1.1,
                         help="Zipf skew of tenant traffic (0 = uniform)")
    p_route.add_argument("--quota-rate", type=float, default=0.0,
                         help="per-tenant token-bucket refill rate in qps "
                              "(0 disables admission quotas)")
    p_route.add_argument("--quota-burst", type=float, default=10.0,
                         help="per-tenant token-bucket capacity")
    p_route.add_argument("--rate", type=float, default=500.0,
                         help="scheduled arrival rate of the Zipf schedule (qps)")
    p_route.add_argument("--duration", type=float, default=2.0,
                         help="load duration in seconds (rate * duration requests)")
    p_route.add_argument("--requests", type=int, default=0,
                         help="explicit request count (overrides --duration)")
    p_route.add_argument("--clients", type=int, default=4,
                         help="closed-loop client threads (tenants are "
                              "partitioned onto clients, preserving each "
                              "tenant's arrival order)")
    p_route.add_argument("--pace", action="store_true",
                         help="sleep clients to the scheduled arrival times "
                              "(default: submit back-to-back, virtual time "
                              "only for quotas)")
    p_route.add_argument("--timeout-ms", type=float, default=0.0,
                         help="per-request deadline (0 = none)")
    p_route.add_argument("--max-batch", type=int, default=64)
    p_route.add_argument("--max-wait-ms", type=float, default=2.0)
    p_route.add_argument("--queue-capacity", type=int, default=256)
    p_route.add_argument("--cache-capacity", type=int, default=1024,
                         help="per-replica LRU result-cache entries (0 disables)")
    p_route.add_argument("--breaker-threshold", type=int, default=3,
                         help="consecutive leg failures that open a replica's "
                              "breaker (0 disables fleet breakers)")
    p_route.add_argument("--breaker-cooldown-s", type=float, default=1.0,
                         help="open-breaker cooldown before the single "
                              "half-open probe")
    p_route.add_argument("--kill-replica", type=int, default=-1,
                         help="chaos: kill this replica id mid-load "
                              "(-1 disables)")
    p_route.add_argument("--rolling-swap", action="store_true",
                         help="chaos: rolling-upgrade the fleet to a freshly "
                              "built index mid-load")
    p_route.add_argument("--chaos-after-s", type=float, default=0.2,
                         help="delay before --kill-replica / --rolling-swap fire")
    p_route.add_argument("--format", choices=("text", "json"), default="text")

    p_stream = sub.add_parser(
        "stream",
        help="drive mixed insert/delete/search load at a mutable index "
             "with background rebuild (docs/streaming.md)",
    )
    _add_dataset_args(p_stream)
    p_stream.add_argument("-k", type=int, default=10)
    p_stream.add_argument("--degree", type=int, default=0)
    _add_search_param_args(p_stream, profile=False)
    p_stream.add_argument("--ops", type=int, default=500,
                          help="total mixed operations across all clients")
    p_stream.add_argument("--clients", type=int, default=4,
                          help="closed-loop concurrent clients")
    p_stream.add_argument("--write-fraction", type=float, default=0.3,
                          help="probability an op is a write")
    p_stream.add_argument("--delete-fraction", type=float, default=0.3,
                          help="probability a write deletes one of the "
                               "client's own inserts")
    p_stream.add_argument("--insert-pool", type=int, default=256,
                          help="dataset rows reserved as fresh insert vectors")
    p_stream.add_argument("--wal-dir", default="",
                          help="write-ahead-log directory (empty = in-memory)")
    p_stream.add_argument("--no-rebuild", dest="auto_rebuild",
                          action="store_false",
                          help="disable the background rebuilder (memtable "
                               "and tombstones only grow)")
    p_stream.add_argument("--rebuild-interval-s", type=float, default=0.2,
                          help="staleness-policy evaluation period")
    p_stream.add_argument("--rebuild-min-rows", type=int, default=32,
                          help="memtable rows below which the policy "
                               "never acts (churn floor)")
    p_stream.add_argument("--rebuild-calibrate", action="store_true",
                          help="seed the rebuild cost model with micro-probes")
    p_stream.add_argument("--max-batch", type=int, default=64)
    p_stream.add_argument("--max-wait-ms", type=float, default=1.0)
    p_stream.add_argument("--cache-capacity", type=int, default=1024)
    p_stream.add_argument("--fault-plan", default="",
                          help="deterministic fault-injection plan, JSON or "
                               "@path (e.g. at stream.wal.append)")
    p_stream.add_argument("--format", choices=("text", "json"), default="text")

    p_tune = sub.add_parser(
        "tune",
        help="auto-tune search parameters to a recall target and save a "
             "tuned profile (loadable via --profile on search/serve/bench)",
    )
    _add_dataset_args(p_tune)
    p_tune.add_argument("--index", default="",
                        help="tune a saved CAGRA index .npz (default: build "
                             "one from the dataset)")
    p_tune.add_argument("--degree", type=int, default=0,
                        help="graph degree for fresh builds (0 = dataset default)")
    p_tune.add_argument("-k", type=int, default=10)
    p_tune.add_argument("--recall-target", type=float, default=0.95,
                        help="recall@k the tuned point must reach")
    p_tune.add_argument("--batch", type=int, default=10000,
                        help="simulated batch size for QPS pricing")
    p_tune.add_argument("--itopk-grid", default="",
                        help="comma-separated itopk values to sweep "
                             "(default 16,32,64,96,128; values < k dropped)")
    p_tune.add_argument("--width-grid", default="",
                        help="comma-separated search_width values (default 1,2,4)")
    p_tune.add_argument("--out", default="",
                        help="profile output path (default: canonical name "
                             "under REPRO_PROFILE_DIR or ./profiles)")
    p_tune.add_argument("--format", choices=("text", "json"), default="text")

    p_validate = sub.add_parser("validate", help="audit a saved index")
    p_validate.add_argument("--index", required=True, help="index .npz path")
    p_validate.add_argument("--sample", type=int, default=1000,
                            help="node sample for 2-hop statistics")

    p_lint = sub.add_parser(
        "lint", help="run the repro invariant linter (RL001-RL006, "
                     "RL101-RL104, RL201-RL203; --sanitize for RL301/RL302)")
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint (default: the repro "
                             "source tree); with --sanitize: pytest paths")
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit non-zero if any violation is found")
    p_lint.add_argument("--sanitize", action="store_true",
                        help="run pytest over PATH args under the "
                             "thread-sanitizer-lite (RL301 lock-order "
                             "cycles, RL302 write races); always strict")

    p_report = sub.add_parser("report", help="print all regenerated bench tables")
    p_report.add_argument("--results", default="benchmarks/results",
                          help="results directory")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "build": _cmd_build,
        "search": _cmd_search,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "route": _cmd_route,
        "stream": _cmd_stream,
        "tune": _cmd_tune,
        "validate": _cmd_validate,
        "lint": _cmd_lint,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
