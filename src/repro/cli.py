"""Command-line interface: ``repro-cagra`` (or ``python -m repro.cli``).

Subcommands::

    repro-cagra info                          # list registered datasets
    repro-cagra build  --dataset deep-1m --scale 4000 --out idx.npz
    repro-cagra search --index idx.npz --dataset deep-1m --scale 4000 -k 10
    repro-cagra bench  --dataset deep-1m --scale 3000 --batch 10000
    repro-cagra validate --index idx.npz      # integrity + reachability audit
    repro-cagra lint --strict                 # repo invariant linter (RL001-RL005)
    repro-cagra report                        # aggregate benchmarks/results/

``build``/``search`` work on the synthetic registry datasets or on real
``.fvecs`` files (``--fvecs path``).
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import exact_search
from repro.core.metrics import recall as recall_of
from repro.datasets import DATASETS, load_dataset, read_fvecs

__all__ = ["build_parser", "main"]


def _add_dataset_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="deep-1m", help="registry dataset name")
    parser.add_argument("--scale", type=int, default=0, help="vectors to generate (0 = default)")
    parser.add_argument("--fvecs", default="", help="load dataset from an .fvecs file instead")
    parser.add_argument("--queries", type=int, default=100, help="query count")
    parser.add_argument("--seed", type=int, default=0)


def _load(args) -> tuple[np.ndarray, np.ndarray, str, int]:
    """Returns (data, queries, metric, graph_degree)."""
    if args.fvecs:
        data = read_fvecs(args.fvecs)
        from repro.datasets import make_queries

        return data, make_queries(data, args.queries, seed=args.seed + 1), "sqeuclidean", 32
    bundle = load_dataset(args.dataset, scale=args.scale, num_queries=args.queries, seed=args.seed)
    return bundle.data, bundle.queries, bundle.spec.metric, bundle.spec.graph_degree


def _cmd_info(args) -> int:
    print(f"{'name':<12}{'dim':>6}{'orig N':>12}{'metric':>15}{'degree':>8}{'default scale':>15}")
    for spec in DATASETS.values():
        print(
            f"{spec.name:<12}{spec.dim:>6}{spec.original_size:>12,}"
            f"{spec.metric:>15}{spec.graph_degree:>8}{spec.default_scale:>15,}"
        )
    return 0


def _cmd_build(args) -> int:
    data, _, metric, degree = _load(args)
    config = GraphBuildConfig(
        graph_degree=args.degree or degree,
        metric=metric,
        reordering=args.reordering,
        seed=args.seed,
    )
    started = time.perf_counter()
    index = CagraIndex.build(data, config, dataset_dtype=args.dtype)
    elapsed = time.perf_counter() - started
    index.save(args.out)
    report = index.build_report
    print(f"built {index!r} in {elapsed:.2f}s "
          f"(knn {report.knn_seconds:.2f}s + optimize {report.optimize_seconds:.2f}s)")
    print(f"saved to {args.out}")
    return 0


def _cmd_search(args) -> int:
    index = CagraIndex.load(args.index)
    _, queries, metric, _ = _load(args)
    config = SearchConfig(itopk=args.itopk, algo=args.algo)
    started = time.perf_counter()
    if args.fast:
        result = index.search_fast(queries, args.k, config=config)
    else:
        result = index.search(queries, args.k, config=config)
    elapsed = time.perf_counter() - started
    truth, _ = exact_search(index.dataset, queries, args.k, metric=index.metric)
    print(f"searched {queries.shape[0]} queries in {elapsed:.3f}s (python wall time)")
    print(f"recall@{args.k}: {recall_of(result.indices, truth):.4f}")
    print(f"distance computations/query: "
          f"{result.report.distance_computations / queries.shape[0]:.0f}")
    return 0


def _cmd_bench(args) -> int:
    from repro.baselines import HnswIndex
    from repro.bench import (
        format_curve_table,
        run_cagra_sweep,
        run_hnsw_sweep,
        speedup_at_recall,
    )

    data, queries, metric, degree = _load(args)
    truth, _ = exact_search(data, queries, args.k, metric=metric)
    print(f"dataset: {args.dataset} n={data.shape[0]} dim={data.shape[1]} metric={metric}")
    index = CagraIndex.build(
        data, GraphBuildConfig(graph_degree=args.degree or degree, metric=metric)
    )
    hnsw = HnswIndex(data, m=16, ef_construction=100, metric=metric).build()
    sweep = [max(args.k, v) for v in (10, 16, 32, 64, 128)]
    curves = [
        run_cagra_sweep(index, queries, truth, args.k, sweep, args.batch),
        run_hnsw_sweep(hnsw, queries, truth, args.k, sweep, args.batch),
    ]
    print(format_curve_table(curves, f"batch={args.batch} recall@{args.k}"))
    print()
    print(speedup_at_recall(curves, "HNSW", [0.90, 0.95]))
    return 0


def _cmd_validate(args) -> int:
    from repro import validate_index

    # FixedDegreeGraph refuses to construct from ids that are out of
    # range, so a corrupt file fails at load time — report it as an
    # audit failure rather than a traceback.
    try:
        index = CagraIndex.load(args.index)
    except (ValueError, OSError, KeyError) as exc:
        print(f"index INVALID: failed to load {args.index!r}: {exc}",
              file=sys.stderr)
        return 1
    report = validate_index(index, sample=args.sample)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_lint(args) -> int:
    from repro.lint import format_json, format_text, lint_paths

    result = lint_paths(args.paths or None)
    formatter = format_json if args.format == "json" else format_text
    print(formatter(result.violations, result.files_checked))
    for error in result.parse_errors:
        print(f"parse error: {error}", file=sys.stderr)
    if result.parse_errors:
        return 2
    if args.strict and result.violations:
        return 1
    return 0


def _cmd_report(args) -> int:
    import glob
    import os

    pattern = os.path.join(args.results, "*.txt")
    files = sorted(glob.glob(pattern))
    if not files:
        print(f"no result files under {args.results!r}; "
              "run: pytest benchmarks/ --benchmark-only")
        return 1
    for path in files:
        print(f"===== {os.path.basename(path)[:-4]} =====")
        with open(path) as handle:
            print(handle.read())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cagra",
        description="CAGRA reproduction: build, search, and benchmark ANN graph indexes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list registered datasets")

    p_build = sub.add_parser("build", help="build a CAGRA index")
    _add_dataset_args(p_build)
    p_build.add_argument("--out", required=True, help="output .npz path")
    p_build.add_argument("--degree", type=int, default=0, help="graph degree (0 = dataset default)")
    p_build.add_argument("--reordering", choices=("rank", "distance", "none"), default="rank")
    p_build.add_argument("--dtype", choices=("float32", "float16"), default="float32")

    p_search = sub.add_parser("search", help="search a saved index")
    _add_dataset_args(p_search)
    p_search.add_argument("--index", required=True, help="index .npz path")
    p_search.add_argument("-k", type=int, default=10)
    p_search.add_argument("--itopk", type=int, default=64)
    p_search.add_argument("--algo", choices=("auto", "single_cta", "multi_cta"), default="auto")
    p_search.add_argument("--fast", action="store_true",
                          help="use the vectorized lockstep batch search")

    p_bench = sub.add_parser("bench", help="quick CAGRA-vs-HNSW recall/QPS sweep")
    _add_dataset_args(p_bench)
    p_bench.add_argument("-k", type=int, default=10)
    p_bench.add_argument("--degree", type=int, default=0)
    p_bench.add_argument("--batch", type=int, default=10000, help="simulated batch size")

    p_validate = sub.add_parser("validate", help="audit a saved index")
    p_validate.add_argument("--index", required=True, help="index .npz path")
    p_validate.add_argument("--sample", type=int, default=1000,
                            help="node sample for 2-hop statistics")

    p_lint = sub.add_parser("lint", help="run the repro invariant linter (RL001-RL005)")
    p_lint.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to lint (default: the repro source tree)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit non-zero if any violation is found")

    p_report = sub.add_parser("report", help="print all regenerated bench tables")
    p_report.add_argument("--results", default="benchmarks/results",
                          help="results directory")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "info": _cmd_info,
        "build": _cmd_build,
        "search": _cmd_search,
        "bench": _cmd_bench,
        "validate": _cmd_validate,
        "lint": _cmd_lint,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
