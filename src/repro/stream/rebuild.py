"""Background rebuilder: policy evaluation + promotion off the hot path.

One daemon thread wakes every ``interval_s``, asks the
:class:`~repro.stream.policy.StalenessPolicy` what the measured
break-even says, runs the chosen maintenance on the
:class:`~repro.stream.mutable.MutableIndex` (whose heavy work happens
outside the index lock), feeds the measured cost back into the policy,
and finally calls the ``promote`` hook — typically
``CagraServer.swap_index`` — whose generation bump + cache clear makes
the promotion safe mid-traffic.

``run_once`` is the same evaluation as a synchronous call (tests and the
CLI drive it directly; ``force="incremental"|"full"`` bypasses the
policy), so background and foreground behaviour cannot drift.
"""

from __future__ import annotations

import threading
import time

from repro.stream.policy import StalenessPolicy

__all__ = ["Rebuilder"]


class Rebuilder:
    """Runs the staleness decision off the serving path (see module doc)."""

    def __init__(
        self,
        index,
        policy: StalenessPolicy | None = None,
        *,
        interval_s: float = 0.5,
        promote=None,
        parallel=None,
        calibrate: bool = False,
        on_stage=None,
    ):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.index = index
        self.policy = policy or StalenessPolicy()
        self.interval_s = float(interval_s)
        self._promote = promote
        self._parallel = parallel
        self._calibrate = bool(calibrate)
        self._on_stage = on_stage
        self._lock = threading.Lock()
        self._history = []  # (decision, report, promote_latency_s)
        self._errors = []
        self._listeners = []  # called with (decision, report, promote_latency_s)
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        with self._lock:
            if self._thread is not None:
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-rebuilder", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        self._wake.set()
        thread.join()

    def kick(self) -> None:
        """Wake the background thread now instead of at the next tick."""
        self._wake.set()

    def __enter__(self) -> "Rebuilder":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # the decision loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        if self._calibrate:
            try:
                inner = getattr(self.index.base_index, "inner", None)
                if inner is not None:
                    self.policy.calibrate(inner)
            except Exception as exc:  # calibration is best-effort
                with self._lock:
                    self._errors.append(exc)
        while not self._stop.is_set():
            self._wake.wait(self.interval_s)
            self._wake.clear()
            if self._stop.is_set():
                return
            try:
                self.run_once()
            except Exception as exc:  # keep serving; surface via errors()
                with self._lock:
                    self._errors.append(exc)

    def run_once(self, force: str | None = None):
        """One evaluation: decide → maintain → feed costs back → promote.

        Returns the :class:`~repro.stream.mutable.MaintenanceReport`, or
        ``None`` when the policy says there is nothing worth doing.
        """
        decision = None
        if force is None:
            decision = self.policy.decide(self.index.freshness())
            action = decision.action
        else:
            if force not in ("incremental", "full"):
                raise ValueError("force must be 'incremental' or 'full'")
            action = force
        if action == "none":
            return None
        if action == "incremental":
            report = self.index.repair_incremental(on_stage=self._on_stage)
        else:
            report = self.index.rebuild_full(
                parallel=self._parallel, on_stage=self._on_stage
            )
        self.policy.note_report(report)
        promote_started = time.perf_counter()
        if self._promote is not None:
            self._promote(self.index)
        promote_latency = (
            time.perf_counter() - promote_started
        ) + report.promote_seconds
        with self._lock:
            self._history.append((decision, report, promote_latency))
            listeners = list(self._listeners)
        for listener in listeners:
            listener(decision, report, promote_latency)
        return report

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def add_listener(self, callback) -> None:
        """``callback(decision, report, promote_latency_s)`` after every
        completed maintenance run (the server hooks stats here)."""
        with self._lock:
            self._listeners.append(callback)

    def history(self) -> list:
        with self._lock:
            return list(self._history)

    def errors(self) -> list:
        with self._lock:
            return list(self._errors)
