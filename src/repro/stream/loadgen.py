"""Closed-loop mixed read/write load generator for a mutable server.

Extends the serving layer's closed-loop shape
(:func:`repro.serve.loadgen.run_closed_loop`) with writes: each of
``num_clients`` synchronous workers draws its next op from a seeded
per-client ``Generator`` — search, insert (from the client's slice of a
vector pool), or delete (of one of the *client's own* acknowledged
inserts, so delete targets never race between clients and every run with
the same seed issues the same op sequence per client).

The report keeps enough evidence to score the freshness contract:
``results`` for recall-vs-oracle, ``inserted_ids`` / ``deleted_ids`` for
"no deleted id ever served" / "every insert immediately findable"
assertions.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.serve.server import CagraServer, ServeError

__all__ = ["MixedLoadReport", "run_mixed_closed_loop"]


@dataclass
class MixedLoadReport:
    """Client-side outcome of one mixed read/write run."""

    num_clients: int = 0
    searches: int = 0
    inserts: int = 0
    deletes: int = 0
    failures: int = 0
    duration_seconds: float = 0.0
    search_latencies_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    write_latencies_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    results: list = field(default_factory=list)  # (query_row, indices)
    inserted_ids: list = field(default_factory=list)
    deleted_ids: list = field(default_factory=list)

    @property
    def ops(self) -> int:
        return self.searches + self.inserts + self.deletes

    def latency_percentile_ms(self, q: float) -> float:
        if not self.search_latencies_ms.size:
            return 0.0
        return float(np.percentile(self.search_latencies_ms, q))

    def summary(self) -> str:
        write_p95 = (
            float(np.percentile(self.write_latencies_ms, 95))
            if self.write_latencies_ms.size
            else 0.0
        )
        return (
            f"mixed closed-loop: {self.ops} ops over {self.num_clients} clients "
            f"(searches={self.searches} inserts={self.inserts} "
            f"deletes={self.deletes} failures={self.failures}) "
            f"in {self.duration_seconds:.2f}s; "
            f"search p50={self.latency_percentile_ms(50):.2f}ms "
            f"p95={self.latency_percentile_ms(95):.2f}ms "
            f"write p95={write_p95:.2f}ms"
        )


def run_mixed_closed_loop(
    server: CagraServer,
    queries: np.ndarray,
    insert_pool: np.ndarray,
    *,
    num_clients: int = 2,
    ops_per_client: int = 100,
    write_fraction: float = 0.2,
    delete_fraction: float = 0.3,
    k: int | None = None,
    timeout_ms: float | None = None,
    seed: int = 0,
) -> MixedLoadReport:
    """Drive mixed traffic at a started server over a mutable index.

    Per op: with probability ``write_fraction`` a write, else a search.
    A write is a delete of one of the client's own live inserts with
    probability ``delete_fraction`` (an insert otherwise, pulling the
    next vector from the client's ``insert_pool`` slice; an exhausted
    pool degrades writes to searches).  Each client's op stream is a
    deterministic function of ``(seed, client)``.
    """
    if num_clients < 1 or ops_per_client < 1:
        raise ValueError("num_clients and ops_per_client must be >= 1")
    if not 0.0 <= write_fraction <= 1.0 or not 0.0 <= delete_fraction <= 1.0:
        raise ValueError("write_fraction and delete_fraction must be in [0, 1]")
    queries = np.atleast_2d(queries)
    insert_pool = np.atleast_2d(insert_pool)
    report = MixedLoadReport(num_clients=num_clients)
    lock = threading.Lock()
    search_latencies: list = []
    write_latencies: list = []

    def worker(client: int) -> None:
        rng = np.random.default_rng([seed, client])
        pool = insert_pool[client::num_clients]
        next_row = 0
        own_live: list = []
        for j in range(ops_per_client):
            u = float(rng.random())
            kind = "search"
            if u < write_fraction:
                if own_live and float(rng.random()) < delete_fraction:
                    kind = "delete"
                elif next_row < pool.shape[0]:
                    kind = "insert"
            try:
                if kind == "insert":
                    started = time.perf_counter()
                    # CagraServer.insert is a thread-safe RPC-shaped method,
                    # not a container mutation.
                    # repro-lint: disable=RL102 — server locks internally
                    assigned = server.insert(pool[next_row])
                    elapsed = time.perf_counter() - started
                    next_row += 1
                    own_live.append(int(assigned[0]))
                    with lock:
                        report.inserts += 1
                        report.inserted_ids.append(int(assigned[0]))
                        write_latencies.append(elapsed * 1e3)
                elif kind == "delete":
                    victim = own_live.pop(int(rng.integers(0, len(own_live))))
                    started = time.perf_counter()
                    server.delete([victim])
                    elapsed = time.perf_counter() - started
                    with lock:
                        report.deletes += 1
                        report.deleted_ids.append(victim)
                        write_latencies.append(elapsed * 1e3)
                else:
                    query_row = (client * ops_per_client + j) % queries.shape[0]
                    result = server.search(
                        queries[query_row], k=k, timeout_ms=timeout_ms
                    )
                    with lock:
                        report.searches += 1
                        search_latencies.append(result.latency_ms)
                        report.results.append((query_row, result.indices))
            except ServeError:
                with lock:
                    report.failures += 1

    threads = [
        threading.Thread(target=worker, args=(c,), name=f"mixed-loadgen-{c}")
        for c in range(num_clients)
    ]
    start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_seconds = time.monotonic() - start
    report.search_latencies_ms = np.asarray(search_latencies, dtype=np.float64)
    report.write_latencies_ms = np.asarray(write_latencies, dtype=np.float64)
    return report
