"""Staleness policy: measured break-even between repair and rebuild.

The policy never hardcodes "rebuild at X% tombstones".  It keeps a
:class:`CostModel` of *measured* per-row costs — incremental repair
(``CagraIndex.extend``) and full rebuild, seeded by :meth:`calibrate`
micro-probes and refined by every real maintenance run — plus the
serving layer's measured query rate and per-query latency, and compares
the estimated net cost of each action:

* ``incremental`` pays ``memtable_rows × c_extend`` now but keeps the
  tombstone overhead: with a fraction *t* of base rows dead, a filtered
  search does roughly ``t/(1-t)`` extra traversal work to fill ``k``
  from live rows, charged over the policy horizon at the measured query
  rate.
* ``full`` pays ``live_rows × c_build`` and clears both the memtable and
  the tombstones.

Whichever estimate is lower wins; a churn floor (``min_memtable_rows`` /
``min_tombstone_ratio``) keeps the rebuilder from thrashing on noise.
Before any measurement exists the policy picks the structurally cheap
side (incremental — the Relative NN-Descent motivation) unless
tombstones already dominate.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

import numpy as np

__all__ = ["CostModel", "RebuildDecision", "StalenessPolicy"]

#: EWMA weight for new cost samples (recent behaviour dominates).
_ALPHA = 0.3


@dataclass(frozen=True)
class RebuildDecision:
    """One policy evaluation (returned by :meth:`StalenessPolicy.decide`)."""

    action: str  # "none" | "incremental" | "full"
    reason: str
    memtable_rows: int
    tombstone_ratio: float
    est_incremental_s: float  # NaN when costs are unmeasured
    est_full_s: float  # NaN when costs are unmeasured


class CostModel:
    """EWMA per-row costs measured from real (or probe) maintenance runs."""

    def __init__(self):
        self._lock = threading.Lock()
        self._extend_s_per_row = None
        self._build_s_per_row = None
        self._samples = 0

    def note_extend(self, rows: int, seconds: float) -> None:
        if rows <= 0:
            return
        per_row = seconds / rows
        with self._lock:
            self._extend_s_per_row = self._blend(self._extend_s_per_row, per_row)
            self._samples += 1

    def note_build(self, rows: int, seconds: float) -> None:
        if rows <= 0:
            return
        per_row = seconds / rows
        with self._lock:
            self._build_s_per_row = self._blend(self._build_s_per_row, per_row)
            self._samples += 1

    @staticmethod
    def _blend(current, sample):
        return sample if current is None else (1 - _ALPHA) * current + _ALPHA * sample

    @property
    def extend_seconds_per_row(self):
        with self._lock:
            return self._extend_s_per_row

    @property
    def build_seconds_per_row(self):
        with self._lock:
            return self._build_s_per_row

    @property
    def measured(self) -> bool:
        with self._lock:
            return (
                self._extend_s_per_row is not None
                and self._build_s_per_row is not None
            )

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "extend_seconds_per_row": self._extend_s_per_row,
                "build_seconds_per_row": self._build_s_per_row,
                "samples": self._samples,
            }


class StalenessPolicy:
    """Decides none/incremental/full from freshness + measured costs."""

    def __init__(
        self,
        *,
        min_memtable_rows: int = 64,
        min_tombstone_ratio: float = 0.05,
        bootstrap_tombstone_ratio: float = 0.3,
        horizon_s: float = 30.0,
        costs: CostModel | None = None,
    ):
        if min_memtable_rows < 1:
            raise ValueError("min_memtable_rows must be >= 1")
        if not 0.0 <= min_tombstone_ratio < 1.0:
            raise ValueError("min_tombstone_ratio must be in [0, 1)")
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        self.min_memtable_rows = int(min_memtable_rows)
        self.min_tombstone_ratio = float(min_tombstone_ratio)
        self.bootstrap_tombstone_ratio = float(bootstrap_tombstone_ratio)
        self.horizon_s = float(horizon_s)
        self.costs = costs or CostModel()

    # ------------------------------------------------------------------
    def decide(self, freshness) -> RebuildDecision:
        """Pick the action with the lower measured net cost (module doc)."""
        m = int(freshness.memtable_rows)
        t = float(freshness.tombstone_ratio)

        def decision(action, reason, incr=math.nan, full=math.nan):
            return RebuildDecision(
                action=action,
                reason=reason,
                memtable_rows=m,
                tombstone_ratio=t,
                est_incremental_s=incr,
                est_full_s=full,
            )

        if m < self.min_memtable_rows and t < self.min_tombstone_ratio:
            return decision("none", "below churn floor")
        c_extend = self.costs.extend_seconds_per_row
        c_build = self.costs.build_seconds_per_row
        if c_extend is None or c_build is None:
            # No measurements yet: take the structurally cheap side
            # unless tombstones already dominate the graph.
            if t >= self.bootstrap_tombstone_ratio:
                return decision("full", "cold start, tombstones dominate")
            if m >= self.min_memtable_rows:
                return decision("incremental", "cold start, memtable due")
            return decision("none", "cold start, nothing due")
        overhead = t / (1.0 - t) if t < 1.0 else math.inf
        tombstone_waste_s = (
            self.horizon_s
            * float(freshness.query_rate_qps)
            * float(freshness.search_seconds_per_query)
            * overhead
        )
        est_incremental = m * c_extend + tombstone_waste_s
        est_full = float(freshness.live_rows) * c_build
        if m == 0:
            # Incremental would be a no-op; rebuild only if reclaiming
            # the tombstone overhead pays for the build.
            if est_full <= tombstone_waste_s:
                return decision(
                    "full", "tombstone overhead exceeds rebuild cost",
                    est_incremental, est_full,
                )
            return decision("none", "rebuild not yet worth it",
                            est_incremental, est_full)
        if est_full <= est_incremental:
            return decision("full", "measured break-even favors rebuild",
                            est_incremental, est_full)
        return decision("incremental", "measured break-even favors repair",
                        est_incremental, est_full)

    # ------------------------------------------------------------------
    def note_report(self, report) -> None:
        """Fold a real maintenance run's measured cost into the model."""
        if report.action == "incremental":
            self.costs.note_extend(report.rows_built, report.build_seconds)
        elif report.action == "full":
            self.costs.note_build(report.rows_built, report.build_seconds)

    def calibrate(self, core_index, *, probe_rows: int = 4, build_rows: int = 128):
        """Seed the cost model with measured micro-probes (results are
        discarded; only the timings matter).  Idempotent enough: each
        call just adds two more samples to the EWMAs."""
        from repro.core.config import GraphBuildConfig
        from repro.core.index import CagraIndex

        dataset = np.asarray(core_index.dataset)
        probe_rows = max(1, min(int(probe_rows), dataset.shape[0]))
        probe = dataset[:probe_rows].copy()
        started = time.perf_counter()
        core_index.extend(probe)
        self.costs.note_extend(probe_rows, time.perf_counter() - started)

        build_rows = max(8, min(int(build_rows), dataset.shape[0]))
        sub = dataset[:build_rows].copy()
        config = core_index.build_config or GraphBuildConfig(
            graph_degree=core_index.degree
        )
        started = time.perf_counter()
        CagraIndex.build(sub, config)
        self.costs.note_build(build_rows, time.perf_counter() - started)
