"""repro.stream — mutable index lifecycle over the frozen CAGRA artifact.

The paper builds a static graph offline; this package turns it into a
live, continuously updated index (ROADMAP item 1):

* :class:`MutableIndex` — insert/delete/search over any ``AnnIndex``
  base: inserts buffer in an exact memtable (searchable immediately),
  deletes are tombstones AND-ed into the base leg's ``filter_mask``.
* :class:`WriteAheadLog` — JSONL commits + npy segments; replay-on-load
  (:meth:`MutableIndex.open`) bounds loss to the op torn by a crash.
* :class:`StalenessPolicy` — a *measured* break-even between incremental
  repair (``CagraIndex.extend``) and full rebuild, never a hardcoded
  threshold.
* :class:`Rebuilder` — background thread running that decision off the
  serving path, promoting atomically through ``CagraServer.swap_index``.
* :func:`run_mixed_closed_loop` — seeded mixed read/write load shape for
  benchmarks and integration tests.

See ``docs/streaming.md`` for the lifecycle state machine, the WAL
format, and the failure-semantics table.
"""

from repro.stream.loadgen import MixedLoadReport, run_mixed_closed_loop
from repro.stream.memtable import ExactMemtable, MemtableSnapshot
from repro.stream.mutable import MaintenanceReport, MutableIndex, StreamFreshness
from repro.stream.policy import CostModel, RebuildDecision, StalenessPolicy
from repro.stream.rebuild import Rebuilder
from repro.stream.wal import WAL_FAULT_POINT, WalRecord, WalReplay, WriteAheadLog

__all__ = [
    "CostModel",
    "ExactMemtable",
    "MaintenanceReport",
    "MemtableSnapshot",
    "MixedLoadReport",
    "MutableIndex",
    "RebuildDecision",
    "Rebuilder",
    "StalenessPolicy",
    "StreamFreshness",
    "WAL_FAULT_POINT",
    "WalRecord",
    "WalReplay",
    "WriteAheadLog",
    "run_mixed_closed_loop",
]
