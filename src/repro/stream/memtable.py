"""Exact brute-force "memtable" segment for freshly inserted vectors.

New vectors land here first: an append-only row store scanned exactly on
every search, so a write is findable the moment :meth:`ExactMemtable.insert`
returns — no graph surgery on the write path.  The background
:class:`~repro.stream.rebuild.Rebuilder` periodically drains a prefix of
these rows into the base graph (``CagraIndex.extend`` or a full rebuild)
and calls :meth:`drop_prefix`.

Rows are addressed by *external id* (the mutable index's stable id
space), never by position.  Deletes just flip a live flag — the row (and
its vector) stays in place so a later checkpoint/rebuild can account for
it, and so prefix-draining arithmetic stays trivial.

Not thread-safe on its own: :class:`~repro.stream.mutable.MutableIndex`
serializes every call under its lock and hands immutable snapshots to
search code running outside the lock.
"""

from __future__ import annotations

import numpy as np

from repro.api.adapters import BruteForceIndex
from repro.core.graph import INDEX_MASK

__all__ = ["ExactMemtable", "MemtableSnapshot"]


class MemtableSnapshot:
    """Immutable view of the live memtable rows at one instant.

    ``ids`` are external ids aligned with ``vectors`` rows.  Safe to
    search outside the index lock (arrays are copies).
    """

    __slots__ = ("ids", "vectors", "metric")

    def __init__(self, ids: np.ndarray, vectors: np.ndarray, metric: str):
        self.ids = ids
        self.vectors = vectors
        self.metric = metric

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def search(self, queries: np.ndarray, k: int, allowed_ids=None):
        """Exact top-k over the snapshot; returns ``(ext_ids, distances)``.

        ``allowed_ids`` is an optional boolean mask over the *external id
        space* (the caller's filter), applied before scanning.  Rows per
        query may be fewer than ``k``; callers merge + pad downstream.
        """
        ids, vectors = self.ids, self.vectors
        if allowed_ids is not None:
            keep = allowed_ids[ids]
            ids, vectors = ids[keep], vectors[keep]
        queries = np.atleast_2d(np.asarray(queries))
        if ids.shape[0] == 0:
            empty_ids = np.empty((queries.shape[0], 0), dtype=np.int64)
            empty_dists = np.empty((queries.shape[0], 0), dtype=np.float64)
            return empty_ids, empty_dists
        oracle = BruteForceIndex(vectors, metric=self.metric)
        result = oracle.search(queries, k=min(int(k), ids.shape[0]))
        local = result.indices.astype(np.int64)
        valid = local != int(INDEX_MASK)
        ext = np.where(
            valid, ids[np.clip(local, 0, ids.shape[0] - 1)], np.int64(INDEX_MASK)
        )
        return ext, result.distances.astype(np.float64)


class ExactMemtable:
    """Append-only buffered rows with per-row live flags (see module doc)."""

    def __init__(self, dim: int, metric: str = "sqeuclidean"):
        self.dim = int(dim)
        self.metric = metric
        self._vectors = np.empty((0, self.dim), dtype=np.float32)
        self._ids = np.empty((0,), dtype=np.int64)
        self._live = np.empty((0,), dtype=bool)
        self._pos = {}  # external id -> row position
        self._filled = 0

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """All buffered rows, live or not (prefix-drain granularity)."""
        return self._filled

    @property
    def num_live(self) -> int:
        return int(np.count_nonzero(self._live[: self._filled]))

    def contains(self, external_id: int) -> bool:
        return int(external_id) in self._pos

    def is_live(self, external_id: int) -> bool:
        pos = self._pos.get(int(external_id))
        return pos is not None and bool(self._live[pos])

    # ------------------------------------------------------------------
    def insert(self, ids, vectors) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self.dim:
            raise ValueError(f"vectors have dim {vectors.shape[1]}, memtable {self.dim}")
        if ids.shape[0] != vectors.shape[0]:
            raise ValueError("ids and vectors must have the same length")
        for external_id in ids:
            if int(external_id) in self._pos:
                raise ValueError(f"id {int(external_id)} already buffered")
        n = ids.shape[0]
        self._reserve(self._filled + n)
        start = self._filled
        self._vectors[start : start + n] = vectors
        self._ids[start : start + n] = ids
        self._live[start : start + n] = True
        for offset, external_id in enumerate(ids):
            self._pos[int(external_id)] = start + offset
        self._filled = start + n

    def delete(self, external_id: int) -> bool:
        """Flip the live flag; True iff the id was present and live."""
        pos = self._pos.get(int(external_id))
        if pos is None or not self._live[pos]:
            return False
        self._live[pos] = False
        return True

    def _reserve(self, rows: int) -> None:
        capacity = self._vectors.shape[0]
        if rows <= capacity:
            return
        new_capacity = max(rows, max(16, capacity * 2))
        grown = np.empty((new_capacity, self.dim), dtype=np.float32)
        grown[:capacity] = self._vectors
        self._vectors = grown
        grown_ids = np.empty((new_capacity,), dtype=np.int64)
        grown_ids[:capacity] = self._ids
        self._ids = grown_ids
        grown_live = np.zeros((new_capacity,), dtype=bool)
        grown_live[:capacity] = self._live
        self._live = grown_live

    # ------------------------------------------------------------------
    def snapshot(self) -> MemtableSnapshot:
        """Copy of the live rows (search outside the lock)."""
        live = self._live[: self._filled]
        return MemtableSnapshot(
            self._ids[: self._filled][live].copy(),
            self._vectors[: self._filled][live].copy(),
            self.metric,
        )

    def prefix(self, count: int):
        """``(ids, vectors, live)`` copies of the first ``count`` rows —
        the unit the rebuilder drains into the base index."""
        count = min(int(count), self._filled)
        return (
            self._ids[:count].copy(),
            self._vectors[:count].copy(),
            self._live[:count].copy(),
        )

    def drop_prefix(self, count: int) -> None:
        """Discard the first ``count`` rows (they now live in the base)."""
        count = min(int(count), self._filled)
        if count <= 0:
            return
        remaining = self._filled - count
        self._vectors[:remaining] = self._vectors[count : self._filled]
        self._ids[:remaining] = self._ids[count : self._filled]
        self._live[:remaining] = self._live[count : self._filled]
        self._filled = remaining
        self._pos = {
            int(self._ids[i]): i for i in range(remaining)
        }

    def ids(self) -> np.ndarray:
        """External ids of all buffered rows (live and dead), in order."""
        return self._ids[: self._filled].copy()

    def __repr__(self) -> str:
        return (
            f"ExactMemtable(rows={self.num_rows}, live={self.num_live}, "
            f"dim={self.dim}, metric={self.metric!r})"
        )
