"""``MutableIndex`` — a live, updatable view over a frozen ANN index.

The CAGRA artifact stays immutable; mutability is layered on top:

* **inserts** buffer in an exact brute-force memtable
  (:class:`~repro.stream.memtable.ExactMemtable`) and are searchable the
  moment ``insert`` returns — results merge with the base graph's via the
  standard ``normalize_results`` machinery;
* **deletes** are tombstones AND-ed into the caller's ``filter_mask`` on
  the base leg (zero graph surgery on the hot path) and live-flag flips
  on the memtable leg;
* **durability** is an optional write-ahead log
  (:class:`~repro.stream.wal.WriteAheadLog`): every mutation is logged
  before it becomes visible, and :meth:`MutableIndex.open` replays the
  log so a restart loses at most the op torn by the crash;
* **maintenance** (:meth:`repair_incremental` via ``CagraIndex.extend``,
  :meth:`rebuild_full` via a fresh build) runs its heavy work *outside*
  the index lock and promotes atomically under it — searches in flight
  keep their immutable snapshot, the next search sees the new base.

Id space: every row has a stable external id (assigned at insert,
monotonic).  ``size`` / ``dataset`` / ``filter_mask`` are all in this id
space — ``dataset`` row *i* is the vector for id *i* (rows of
compacted-away deleted ids are zeros and excluded by :meth:`live_mask`),
so the standard length contract ``filter_mask.shape == (size,)`` holds
unchanged.

Thread-safety: every public method is safe to call from any thread.  All
state is guarded by one lock; search copies what it needs under the lock
and computes outside it.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.api.adapters import AnnIndexAdapter, as_ann_index
from repro.api.instrumentation import stage_timer
from repro.api.results import SearchResult, normalize_results
from repro.core.config import GraphBuildConfig
from repro.core.graph import INDEX_MASK, FixedDegreeGraph
from repro.core.index import CagraIndex
from repro.stream.memtable import ExactMemtable
from repro.stream.wal import WriteAheadLog

__all__ = ["MutableIndex", "StreamFreshness", "MaintenanceReport"]

#: Sliding window of recent searches used to measure query rate/cost.
_COST_WINDOW = 512


@dataclass(frozen=True)
class StreamFreshness:
    """Snapshot of how far the served base index lags the write stream."""

    base_rows: int  # rows in the base graph (incl. tombstoned)
    tombstone_rows: int  # base rows deleted but still in the graph
    memtable_rows: int  # buffered rows (live or not) awaiting drain
    memtable_live: int  # buffered rows still live
    live_rows: int  # total searchable rows right now
    id_capacity: int  # external id space size (== MutableIndex.size)
    epoch: int  # promotions so far
    wal_seq: int  # last durable op sequence (0 without a WAL)
    query_rate_qps: float  # measured over the recent search window
    search_seconds_per_query: float  # measured mean per-query latency

    @property
    def tombstone_ratio(self) -> float:
        return self.tombstone_rows / self.base_rows if self.base_rows else 0.0


@dataclass(frozen=True)
class MaintenanceReport:
    """What one repair/rebuild actually did and cost (measured)."""

    action: str  # "incremental" | "full"
    rows_folded: int  # rows moved from memtable into the base
    rows_built: int  # rows the heavy step processed
    build_seconds: float  # extend/build time (off the serving path)
    promote_seconds: float  # time under the lock at promotion
    epoch: int  # epoch after promotion
    stages: tuple = ()  # on_stage events captured from the heavy step


class MutableIndex:
    """Mutable insert/delete/search lifecycle over an ``AnnIndex`` base."""

    def __init__(
        self,
        base,
        *,
        wal_dir: str | None = None,
        wal_fsync: bool = True,
        fault_plan: str = "",
        num_sms: int = 108,
        _wal: WriteAheadLog | None = None,
        _row_ids: np.ndarray | None = None,
        _tombstones: np.ndarray | None = None,
        _next_id: int | None = None,
    ):
        base = as_ann_index(base, num_sms=num_sms)
        self._num_sms = num_sms
        self._dim = int(base.dim)
        self._metric = str(base.metric)
        self._lock = threading.Lock()
        self._base = base
        n = int(base.size)
        if _row_ids is not None:
            self._row_ids = np.asarray(_row_ids, dtype=np.int64)
        else:
            self._row_ids = np.arange(n, dtype=np.int64)
        if self._row_ids.shape != (n,):
            raise ValueError("row_ids must have one entry per base row")
        if _tombstones is not None:
            self._tombstones = np.asarray(_tombstones, dtype=bool).copy()
        else:
            self._tombstones = np.zeros(n, dtype=bool)
        if self._tombstones.shape != (n,):
            raise ValueError("tombstones must have one entry per base row")
        self._base_pos = {int(ext): row for row, ext in enumerate(self._row_ids)}
        self._memtable = ExactMemtable(self._dim, self._metric)
        self._next_id = (
            int(_next_id)
            if _next_id is not None
            else (int(self._row_ids.max()) + 1 if n else 0)
        )
        self._epoch = 0
        self._maintenance_active = False
        self._costs = deque(maxlen=_COST_WINDOW)  # (monotonic, queries, seconds)
        self._on_mutation = None
        if _wal is not None:
            self._wal = _wal
        elif wal_dir is not None:
            self._wal = WriteAheadLog(wal_dir, fsync=wal_fsync, fault_plan=fault_plan)
        else:
            self._wal = None
        if self._wal is not None and _wal is None:
            # Fresh WAL attachment: fold the starting state into a
            # checkpoint so replay always has a base to stand on.
            with self._lock:
                self._checkpoint_locked()

    # ------------------------------------------------------------------
    # restart / replay
    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls,
        wal_dir: str,
        *,
        base=None,
        wal_fsync: bool = True,
        fault_plan: str = "",
        num_sms: int = 108,
    ) -> "MutableIndex":
        """Recover a mutable index from its WAL directory.

        Loads the latest checkpoint (or starts from ``base`` when the
        directory is fresh) and replays every committed op after it.
        Loss is bounded to the op whose commit record the crash tore.
        """
        wal = WriteAheadLog(wal_dir, fsync=wal_fsync, fault_plan=fault_plan)
        replay = wal.replay()
        if replay.checkpoint is not None:
            cp = replay.checkpoint
            core = CagraIndex(
                cp["dataset"],
                FixedDegreeGraph(cp["neighbors"]),
                metric=str(cp["metric"]),
            )
            index = cls(
                core,
                num_sms=num_sms,
                _wal=wal,
                _row_ids=cp["row_ids"],
                _tombstones=cp["tombstones"],
                _next_id=int(cp["next_id"]),
            )
        elif base is not None:
            index = cls(base, num_sms=num_sms, _wal=wal)
            with index._lock:
                index._checkpoint_locked()
        else:
            raise ValueError(f"no checkpoint under {wal_dir!r} and no base given")
        for record in replay.records:
            if record.op == "insert":
                vectors = wal.load_segment(record)
                index._apply_insert(np.asarray(record.ids, dtype=np.int64), vectors)
            else:
                index._apply_delete(
                    np.asarray(record.ids, dtype=np.int64), strict=False
                )
        return index

    # ------------------------------------------------------------------
    # AnnIndex surface
    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return "mutable"

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def metric(self) -> str:
        return self._metric

    @property
    def num_shards(self) -> int:
        return 1

    @property
    def size(self) -> int:
        """External id-space size (== ``dataset`` rows; see module doc)."""
        with self._lock:
            return int(self._next_id)

    @property
    def base_index(self):
        """The current immutable base adapter (atomically swapped)."""
        with self._lock:
            return self._base

    @property
    def wal(self) -> WriteAheadLog | None:
        return self._wal

    @property
    def dataset(self) -> np.ndarray:
        """Vectors indexed by external id (compacted dead ids are zeros)."""
        with self._lock:
            out = np.zeros((self._next_id, self._dim), dtype=np.float32)
            base_dataset = getattr(self._base, "dataset", None)
            if base_dataset is not None and self._row_ids.size:
                out[self._row_ids] = np.asarray(base_dataset, dtype=np.float32)
            count = self._memtable.num_rows
            if count:
                ids, vectors, _ = self._memtable.prefix(count)
                out[ids] = vectors
        return out

    def live_mask(self) -> np.ndarray:
        """Bool mask over the id space: True where the id is searchable."""
        with self._lock:
            mask = np.zeros(self._next_id, dtype=bool)
            if self._row_ids.size:
                mask[self._row_ids[~self._tombstones]] = True
            count = self._memtable.num_rows
            if count:
                ids, _, live = self._memtable.prefix(count)
                mask[ids[live]] = True
        return mask

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def insert(self, vectors, ids=None) -> np.ndarray:
        """Make ``vectors`` searchable immediately; returns their ids.

        Logged to the WAL (when attached) *before* becoming visible, so
        an acknowledged insert survives restart.  Explicit ``ids`` must
        be fresh (never used before); by default ids are allocated
        monotonically.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float32))
        if vectors.shape[1] != self._dim:
            raise ValueError(
                f"vectors have dim {vectors.shape[1]}, index has {self._dim}"
            )
        with self._lock:
            if ids is None:
                assigned = np.arange(
                    self._next_id, self._next_id + vectors.shape[0], dtype=np.int64
                )
            else:
                assigned = np.asarray(ids, dtype=np.int64)
                if assigned.shape[0] != vectors.shape[0]:
                    raise ValueError("ids and vectors must have the same length")
                if len(set(int(i) for i in assigned)) != assigned.shape[0]:
                    raise ValueError("duplicate ids in one insert batch")
                for ext in assigned:
                    if int(ext) < 0:
                        raise ValueError("ids must be non-negative")
                    if int(ext) in self._base_pos or self._memtable.contains(int(ext)):
                        raise ValueError(f"id {int(ext)} already exists")
            if self._wal is not None:
                self._wal.append_insert(assigned, vectors)
            self._insert_locked(assigned, vectors)
            callback = self._on_mutation
        if callback is not None:
            callback()
        return assigned

    def delete(self, ids, strict: bool = True) -> int:
        """Tombstone ``ids``; they never appear in results again.

        Returns the number of rows newly deleted.  Unknown or already
        deleted ids raise ``KeyError`` unless ``strict=False``.
        """
        ids = np.atleast_1d(np.asarray(ids, dtype=np.int64))
        with self._lock:
            if strict:
                for ext in ids:
                    key = int(ext)
                    row = self._base_pos.get(key)
                    alive = (
                        row is not None and not self._tombstones[row]
                    ) or self._memtable.is_live(key)
                    if not alive:
                        raise KeyError(f"id {key} does not exist or was deleted")
            if self._wal is not None:
                self._wal.append_delete(ids)
            removed = self._delete_locked(ids)
            callback = self._on_mutation
        if callback is not None and removed:
            callback()
        return removed

    def _insert_locked(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        self._memtable.insert(ids, vectors)
        self._next_id = max(self._next_id, int(ids.max()) + 1)

    def _delete_locked(self, ids: np.ndarray) -> int:
        removed = 0
        for ext in ids:
            key = int(ext)
            row = self._base_pos.get(key)
            if row is not None and not self._tombstones[row]:
                self._tombstones[row] = True
                removed += 1
            elif self._memtable.delete(key):
                removed += 1
        return removed

    def _apply_insert(self, ids: np.ndarray, vectors: np.ndarray) -> None:
        """Replay path: apply without re-logging; skip already-known ids
        (a checkpoint may already have folded the op in)."""
        with self._lock:
            fresh = np.array(
                [
                    int(ext) not in self._base_pos
                    and not self._memtable.contains(int(ext))
                    for ext in ids
                ],
                dtype=bool,
            )
            if fresh.any():
                self._insert_locked(ids[fresh], np.atleast_2d(vectors)[fresh])
            self._next_id = max(self._next_id, int(ids.max()) + 1)

    def _apply_delete(self, ids: np.ndarray, strict: bool = False) -> int:
        with self._lock:
            return self._delete_locked(ids)

    def set_mutation_listener(self, callback) -> None:
        """``callback()`` fires after every visible state change (insert,
        delete, promotion) — the server hooks cache invalidation here.
        Called outside the index lock."""
        with self._lock:
            self._on_mutation = callback

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        *,
        filter_mask: np.ndarray | None = None,
        config=None,
        mode: str = "auto",
        on_stage=None,
    ) -> SearchResult:
        """Merged base-graph + memtable search (standard result contract).

        ``filter_mask`` is over the external id space (length ``size``);
        tombstones are AND-ed in on the base leg so deleted rows never
        surface, and the caller's mask applies to memtable rows too.
        """
        queries = np.atleast_2d(np.asarray(queries))
        started = time.perf_counter()
        with self._lock:
            base = self._base
            row_ids = self._row_ids
            tombstones = self._tombstones.copy()
            snapshot = self._memtable.snapshot()
            id_capacity = self._next_id
        mask = None
        if filter_mask is not None:
            mask = np.asarray(filter_mask, dtype=bool)
            if mask.shape != (id_capacity,):
                raise ValueError("filter_mask must have one entry per dataset row")
        with stage_timer(on_stage, "stream.search") as stage:
            base_ids, base_dists, base_counters = self._search_base(
                base, row_ids, tombstones, queries, k, mask, config, mode, on_stage
            )
            mem_ids, mem_dists = snapshot.search(queries, k, allowed_ids=mask)
            if base_ids.shape[1] == 0 and mem_ids.shape[1] == 0:
                raise ValueError("filter_mask excludes every node")
            merged_ids = np.hstack([base_ids, mem_ids])
            merged_dists = np.hstack([base_dists, mem_dists])
            order = np.argsort(merged_dists, axis=1, kind="stable")
            top_ids = np.take_along_axis(merged_ids, order, axis=1)[:, :k]
            top_dists = np.take_along_axis(merged_dists, order, axis=1)[:, :k]
            if top_ids.shape[1] < k:
                pad = ((0, 0), (0, k - top_ids.shape[1]))
                top_ids = np.pad(top_ids, pad, constant_values=int(INDEX_MASK))
                top_dists = np.pad(top_dists, pad, constant_values=np.inf)
            indices, distances = normalize_results(top_ids, top_dists)
            counters = {
                "algo": "stream",
                "memtable_rows": len(snapshot),
                "tombstone_rows": int(tombstones.sum()),
                "distance_computations": int(
                    base_counters.get("distance_computations", 0)
                )
                + int(queries.shape[0]) * len(snapshot),
            }
            stage.counters = counters
        elapsed = time.perf_counter() - started
        with self._lock:
            self._costs.append((time.monotonic(), int(queries.shape[0]), elapsed))
        return SearchResult(indices=indices, distances=distances, counters=counters)

    def _search_base(
        self, base, row_ids, tombstones, queries, k, mask, config, mode, on_stage
    ):
        """Base-graph leg: tombstones AND caller mask, ids mapped to the
        external id space.  Returns empty columns when no base row may
        answer (every row tombstoned or masked out)."""
        num_queries = queries.shape[0]
        empty = (
            np.empty((num_queries, 0), dtype=np.int64),
            np.empty((num_queries, 0), dtype=np.float64),
            {},
        )
        if row_ids.size == 0:
            return empty
        allowed = ~tombstones
        if mask is not None:
            allowed &= mask[row_ids]
        if not allowed.any():
            return empty
        base_mask = None if allowed.all() else allowed
        if isinstance(base, AnnIndexAdapter):
            result = base.search(
                queries, k, filter_mask=base_mask, config=config, mode=mode,
                on_stage=on_stage,
            )
        else:
            result = base.search(queries, k, filter_mask=base_mask)
        local = result.indices.astype(np.int64)
        valid = local != int(INDEX_MASK)
        ext = np.where(
            valid,
            row_ids[np.clip(local, 0, row_ids.shape[0] - 1)],
            np.int64(INDEX_MASK),
        )
        dists = result.distances.astype(np.float64)
        dists = np.where(valid, dists, np.inf)
        return ext, dists, dict(result.counters or {})

    # ------------------------------------------------------------------
    # freshness
    # ------------------------------------------------------------------
    def freshness(self) -> StreamFreshness:
        with self._lock:
            base_rows = int(self._row_ids.shape[0])
            tombstone_rows = int(self._tombstones.sum())
            memtable_rows = self._memtable.num_rows
            memtable_live = self._memtable.num_live
            costs = list(self._costs)
            epoch = self._epoch
            wal_seq = self._wal.last_seq if self._wal is not None else 0
            id_capacity = int(self._next_id)
        queries = sum(c[1] for c in costs)
        seconds = sum(c[2] for c in costs)
        per_query = seconds / queries if queries else 0.0
        if len(costs) >= 2 and costs[-1][0] > costs[0][0]:
            rate = queries / (costs[-1][0] - costs[0][0])
        else:
            rate = 0.0
        return StreamFreshness(
            base_rows=base_rows,
            tombstone_rows=tombstone_rows,
            memtable_rows=memtable_rows,
            memtable_live=memtable_live,
            live_rows=(base_rows - tombstone_rows) + memtable_live,
            id_capacity=id_capacity,
            epoch=epoch,
            wal_seq=wal_seq,
            query_rate_qps=rate,
            search_seconds_per_query=per_query,
        )

    # ------------------------------------------------------------------
    # maintenance (heavy work outside the lock, atomic promotion under it)
    # ------------------------------------------------------------------
    def _core_index(self, base) -> CagraIndex:
        inner = getattr(base, "inner", base)
        if not isinstance(inner, CagraIndex):
            raise TypeError(
                "maintenance needs a CagraIndex base "
                f"(got {type(inner).__name__}); memtable-merge still works"
            )
        return inner

    def _begin_maintenance(self):
        with self._lock:
            if self._maintenance_active:
                raise RuntimeError("a repair/rebuild is already in flight")
            self._maintenance_active = True

    def _abort_maintenance(self):
        with self._lock:
            self._maintenance_active = False

    def repair_incremental(
        self, *, itopk: int = 0, seed: int = 0, on_stage=None
    ) -> MaintenanceReport:
        """Drain the memtable into the base via ``CagraIndex.extend``.

        Tombstones stay in place (still cheap to filter); the memtable
        prefix captured at entry is folded into the graph.  Writes that
        arrive during the extend stay in the memtable; deletes that hit a
        draining row are carried over as tombstones at promotion.
        """
        self._begin_maintenance()
        try:
            with self._lock:
                core = self._core_index(self._base)
                count = self._memtable.num_rows
                ids, vectors, live = self._memtable.prefix(count)
            drain_ids = ids[live]
            drain_vectors = vectors[live]
            build_started = time.perf_counter()
            stages = []

            def record_stage(name, seconds, counters):
                stages.append((name, seconds, counters))
                if on_stage is not None:
                    on_stage(name, seconds, counters)

            if drain_ids.size:
                new_core = core.extend(
                    drain_vectors, itopk=itopk, seed=seed, on_stage=record_stage
                )
            else:
                new_core = core
            build_seconds = time.perf_counter() - build_started
            promote_started = time.perf_counter()
            with self._lock:
                if drain_ids.size:
                    # Deletes may have landed on draining rows mid-extend:
                    # read their *current* liveness for the new tombstones.
                    still_live = np.array(
                        [self._memtable.is_live(int(ext)) for ext in drain_ids],
                        dtype=bool,
                    )
                    self._base = as_ann_index(new_core, num_sms=self._num_sms)
                    start = self._row_ids.shape[0]
                    self._row_ids = np.concatenate([self._row_ids, drain_ids])
                    self._tombstones = np.concatenate(
                        [self._tombstones, ~still_live]
                    )
                    for offset, ext in enumerate(drain_ids):
                        self._base_pos[int(ext)] = start + offset
                self._memtable.drop_prefix(count)
                self._epoch += 1
                epoch = self._epoch
                self._checkpoint_locked()
                callback = self._on_mutation
            promote_seconds = time.perf_counter() - promote_started
        finally:
            self._abort_maintenance()
        if callback is not None:
            callback()
        return MaintenanceReport(
            action="incremental",
            rows_folded=int(count),
            rows_built=int(drain_ids.size),
            build_seconds=build_seconds,
            promote_seconds=promote_seconds,
            epoch=epoch,
            stages=tuple(stages),
        )

    def rebuild_full(
        self,
        *,
        build_config: GraphBuildConfig | None = None,
        parallel=None,
        on_stage=None,
    ) -> MaintenanceReport:
        """Rebuild the base graph from every live row, dropping tombstones.

        The build runs outside the lock (optionally on a
        :class:`~repro.parallel.executor.ShardExecutor` process worker to
        get off the GIL); promotion installs the compacted base, clears
        tombstones, and empties the drained memtable prefix atomically.
        """
        self._begin_maintenance()
        try:
            with self._lock:
                core = self._core_index(self._base)
                live_base = ~self._tombstones
                base_ids = self._row_ids[live_base]
                base_vectors = np.asarray(core.dataset)[live_base]
                count = self._memtable.num_rows
                mem_ids, mem_vectors, mem_live = self._memtable.prefix(count)
                config = (
                    build_config
                    or core.build_config
                    or GraphBuildConfig(graph_degree=core.degree)
                )
            snap_ids = np.concatenate([base_ids, mem_ids[mem_live]])
            snap_vectors = np.vstack(
                [base_vectors.astype(np.float32), mem_vectors[mem_live]]
            )
            if snap_ids.shape[0] < 2:
                raise RuntimeError("fewer than 2 live rows; nothing to rebuild")
            build_started = time.perf_counter()
            stages = []

            def record_stage(name, seconds, counters):
                stages.append((name, seconds, counters))
                if on_stage is not None:
                    on_stage(name, seconds, counters)

            new_core = _build_core(snap_vectors, config, parallel)
            build_seconds = time.perf_counter() - build_started
            record_stage(
                "stream.rebuild",
                build_seconds,
                {"rows": int(snap_ids.shape[0]), "degree": int(config.graph_degree)},
            )
            promote_started = time.perf_counter()
            with self._lock:
                # Rows deleted while the build ran become tombstones in
                # the fresh base (their vectors are already baked in).
                still_live = np.array(
                    [self._is_live_locked(int(ext)) for ext in snap_ids], dtype=bool
                )
                self._base = as_ann_index(new_core, num_sms=self._num_sms)
                self._row_ids = snap_ids.astype(np.int64)
                self._tombstones = ~still_live
                self._base_pos = {
                    int(ext): row for row, ext in enumerate(snap_ids)
                }
                self._memtable.drop_prefix(count)
                self._epoch += 1
                epoch = self._epoch
                self._checkpoint_locked()
                callback = self._on_mutation
            promote_seconds = time.perf_counter() - promote_started
        finally:
            self._abort_maintenance()
        if callback is not None:
            callback()
        return MaintenanceReport(
            action="full",
            rows_folded=int(count),
            rows_built=int(snap_ids.shape[0]),
            build_seconds=build_seconds,
            promote_seconds=promote_seconds,
            epoch=epoch,
            stages=tuple(stages),
        )

    def _is_live_locked(self, ext: int) -> bool:
        row = self._base_pos.get(ext)
        if row is not None:
            return not bool(self._tombstones[row])
        return self._memtable.is_live(ext)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Fold current base state into the WAL checkpoint (no-op without
        a WAL); mutations since the last promotion stay in the log."""
        with self._lock:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        if self._wal is None:
            return
        inner = getattr(self._base, "inner", self._base)
        if not isinstance(inner, CagraIndex):
            raise TypeError("WAL checkpoints need a CagraIndex base")
        self._wal.checkpoint(
            {
                "dataset": np.asarray(inner.dataset),
                "neighbors": inner.graph.neighbors,
                "metric": np.array(inner.metric),
                "row_ids": self._row_ids,
                "tombstones": self._tombstones,
            },
            next_id=self._next_id,
        )

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()

    def __repr__(self) -> str:
        f = self.freshness()
        return (
            f"MutableIndex(live={f.live_rows}, base={f.base_rows}, "
            f"memtable={f.memtable_rows}, tombstones={f.tombstone_rows}, "
            f"epoch={f.epoch})"
        )


def _build_task(payload):
    """Module-level full-rebuild body (picklable for process workers)."""
    vectors, config = payload
    return CagraIndex.build(vectors, config)


def _build_core(vectors, config, parallel) -> CagraIndex:
    """Build directly, or through a ShardExecutor worker when given."""
    if parallel is None:
        return CagraIndex.build(vectors, config)
    from repro.parallel.executor import ShardExecutor

    if isinstance(parallel, ShardExecutor):
        return parallel.map(_build_task, [(vectors, config)])[0]
    executor = ShardExecutor.from_config(parallel, num_tasks=1)
    try:
        return executor.map(_build_task, [(vectors, config)])[0]
    finally:
        executor.close()
