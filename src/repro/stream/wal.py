"""Write-ahead log for the mutable index (JSONL commits + npy segments).

Layout of a WAL directory::

    wal.jsonl            one JSON commit record per line, in seq order
    seg-00000003.npy     insert payload (vectors) referenced by a commit
    checkpoint.npz       latest promoted base state (single-file, atomic)

Durability contract (the order is the whole design):

1. ``append_insert`` first writes the vector payload to a *segment* file
   (tmp + ``os.replace``), **then** fires the ``stream.wal.append`` fault
   point, **then** appends one JSONL commit record and flushes it.  A
   crash between segment write and commit leaves an orphaned segment that
   replay ignores; a crash mid-commit leaves a torn trailing line that
   replay also ignores.  An op is durable iff its commit record is whole.
2. ``checkpoint`` folds everything up to ``seq`` into a single
   ``checkpoint.npz`` (written tmp-then-``os.replace``, so the old
   checkpoint survives any crash), then atomically rewrites the log down
   to one ``checkpoint`` record and prunes stale segments.  Because every
   commit record carries its ``seq``, replay after a crash *between*
   those two steps simply skips log records already folded into the
   checkpoint — no idempotency gymnastics required.

The log is **not** thread-safe on its own; callers serialize access
(:class:`~repro.stream.mutable.MutableIndex` holds its lock across every
append and checkpoint).
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.resilience import FaultInjector, resolve_fault_plan

__all__ = ["WalRecord", "WalReplay", "WriteAheadLog", "WAL_FAULT_POINT"]

LOG_NAME = "wal.jsonl"
CHECKPOINT_NAME = "checkpoint.npz"

#: Fault point fired between segment write and commit append (the
#: crash-consistency window; see :mod:`repro.resilience`).
WAL_FAULT_POINT = "stream.wal.append"


@dataclass(frozen=True)
class WalRecord:
    """One durable log entry (an acknowledged insert/delete, or a
    checkpoint watermark)."""

    op: str  # "insert" | "delete" | "checkpoint"
    seq: int
    ids: tuple = ()
    segment: str = ""  # insert payload file name (relative to the WAL dir)
    next_id: int = 0  # checkpoint only: id-allocator watermark

    def to_json(self) -> str:
        payload = {"op": self.op, "seq": self.seq}
        if self.ids:
            payload["ids"] = [int(i) for i in self.ids]
        if self.segment:
            payload["segment"] = self.segment
        if self.op == "checkpoint":
            payload["next_id"] = int(self.next_id)
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WalRecord":
        payload = json.loads(text)
        op = payload["op"]
        if op not in ("insert", "delete", "checkpoint"):
            raise ValueError(f"unknown WAL op {op!r}")
        return cls(
            op=op,
            seq=int(payload["seq"]),
            ids=tuple(int(i) for i in payload.get("ids", ())),
            segment=str(payload.get("segment", "")),
            next_id=int(payload.get("next_id", 0)),
        )


@dataclass
class WalReplay:
    """Everything :meth:`WriteAheadLog.replay` recovered from disk."""

    checkpoint: dict | None  # arrays from checkpoint.npz (or None)
    records: list = field(default_factory=list)  # post-checkpoint ops, seq order
    torn_tail: bool = False  # a torn/unparsable trailing line was dropped
    orphan_segments: int = 0  # segments with no commit record (crash window)


class WriteAheadLog:
    """Append-only durability log under one directory (see module doc)."""

    def __init__(self, path: str, *, fsync: bool = True, fault_plan: str = ""):
        self.path = str(path)
        self.fsync = bool(fsync)
        os.makedirs(self.path, exist_ok=True)
        plan = resolve_fault_plan(fault_plan)
        self._fault = FaultInjector(plan) if plan is not None else None
        self._log_path = os.path.join(self.path, LOG_NAME)
        self._last_seq = 0
        for record in self._scan_log()[0]:
            self._last_seq = max(self._last_seq, record.seq)
        self._handle = open(self._log_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    @property
    def last_seq(self) -> int:
        return self._last_seq

    def append_insert(self, ids, vectors) -> WalRecord:
        """Durably log an insert; returns the committed record.

        The payload segment is written (and replaced into place) before
        the fault point fires, so an injected crash models dying between
        payload and commit — the op is then *not* acknowledged and replay
        must not surface it.
        """
        ids = np.asarray(ids, dtype=np.int64)
        vectors = np.atleast_2d(np.asarray(vectors))
        if ids.shape[0] != vectors.shape[0]:
            raise ValueError("ids and vectors must have the same length")
        seq = self._last_seq + 1
        segment = f"seg-{seq:08d}.npy"
        self._write_segment(segment, vectors)
        if self._fault is not None:
            spec = self._fault.fire(WAL_FAULT_POINT, op="insert", seq=seq)
            if spec is not None:  # corrupt kind: simulate a torn commit line
                self._torn_append(
                    WalRecord("insert", seq, tuple(int(i) for i in ids), segment)
                )
        record = WalRecord("insert", seq, tuple(int(i) for i in ids), segment)
        self._append(record)
        return record

    def append_delete(self, ids) -> WalRecord:
        seq = self._last_seq + 1
        if self._fault is not None:
            spec = self._fault.fire(WAL_FAULT_POINT, op="delete", seq=seq)
            if spec is not None:
                self._torn_append(WalRecord("delete", seq, tuple(int(i) for i in ids)))
        record = WalRecord("delete", seq, tuple(int(i) for i in ids))
        self._append(record)
        return record

    def _append(self, record: WalRecord) -> None:
        self._handle.write(record.to_json() + "\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._last_seq = record.seq

    def _torn_append(self, record: WalRecord) -> None:
        """Write half a commit line (no newline) then fail — a torn write."""
        line = record.to_json()
        self._handle.write(line[: len(line) // 2])
        self._handle.flush()
        from repro.resilience import FaultInjected

        raise FaultInjected(f"torn WAL append at seq {record.seq}")

    def _write_segment(self, name: str, vectors: np.ndarray) -> None:
        final = os.path.join(self.path, name)
        tmp = final + ".tmp"
        with open(tmp, "wb") as handle:
            np.save(handle, vectors)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, final)

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self, arrays: dict, *, seq: int | None = None, next_id: int = 0):
        """Fold state up to ``seq`` into ``checkpoint.npz`` and shrink the log.

        ``arrays`` maps names to numpy arrays (the mutable index stores
        dataset, graph, row ids, tombstones...).  Written tmp-then-replace
        so a crash never loses the previous checkpoint; the log rewrite
        and segment pruning that follow are pure space reclamation — a
        crash between the steps only leaves already-folded records that
        replay skips by ``seq``.
        """
        seq = self._last_seq if seq is None else int(seq)
        final = os.path.join(self.path, CHECKPOINT_NAME)
        tmp = final + ".tmp"
        payload = dict(arrays)
        payload["wal_seq"] = np.int64(seq)
        payload["wal_next_id"] = np.int64(next_id)
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **payload)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, final)
        # Rewrite the log down to a single checkpoint watermark record.
        record = WalRecord("checkpoint", seq, next_id=int(next_id))
        log_tmp = self._log_path + ".tmp"
        with open(log_tmp, "w", encoding="utf-8") as handle:
            handle.write(record.to_json() + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        self._handle.close()
        os.replace(log_tmp, self._log_path)
        self._handle = open(self._log_path, "a", encoding="utf-8")
        self._last_seq = max(self._last_seq, seq)
        self._prune_segments(seq)

    def _prune_segments(self, up_to_seq: int) -> None:
        for name in os.listdir(self.path):
            if not (name.startswith("seg-") and name.endswith(".npy")):
                continue
            try:
                seg_seq = int(name[4:-4])
            except ValueError:
                continue
            if seg_seq <= up_to_seq:
                try:
                    os.remove(os.path.join(self.path, name))
                except OSError:
                    pass

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _scan_log(self) -> tuple[list, bool]:
        """Parse commit records; a torn/bad line ends the valid log."""
        records = []
        torn = False
        if not os.path.exists(self._log_path):
            return records, torn
        with open(self._log_path, encoding="utf-8") as handle:
            for line in handle:
                text = line.rstrip("\n")
                if not text:
                    continue
                try:
                    records.append(WalRecord.from_json(text))
                except (ValueError, KeyError):
                    torn = True
                    break
        return records, torn

    def load_segment(self, record: WalRecord) -> np.ndarray:
        with open(os.path.join(self.path, record.segment), "rb") as handle:
            return np.load(io.BytesIO(handle.read()))

    def replay(self) -> WalReplay:
        """Recover checkpoint + post-checkpoint ops (see module doc)."""
        checkpoint = None
        checkpoint_seq = 0
        cp_path = os.path.join(self.path, CHECKPOINT_NAME)
        if os.path.exists(cp_path):
            with np.load(cp_path, allow_pickle=False) as archive:
                checkpoint = {name: archive[name] for name in archive.files}
            checkpoint_seq = int(checkpoint.pop("wal_seq"))
        records, torn = self._scan_log()
        ops = []
        committed_segments = set()
        for record in records:
            if record.op == "checkpoint":
                checkpoint_seq = max(checkpoint_seq, record.seq)
                continue
            committed_segments.add(record.segment)
            if record.seq <= checkpoint_seq:
                continue  # already folded into the checkpoint
            if record.op == "insert" and not os.path.exists(
                os.path.join(self.path, record.segment)
            ):
                # Commit without payload: cannot happen from the append
                # ordering, so treat it as the end of the trusted log.
                torn = True
                break
            ops.append(record)
        orphans = sum(
            1
            for name in os.listdir(self.path)
            if name.startswith("seg-")
            and name.endswith(".npy")
            and name not in committed_segments
        )
        if checkpoint is not None:
            checkpoint["next_id"] = checkpoint.pop("wal_next_id")
        return WalReplay(
            checkpoint=checkpoint,
            records=ops,
            torn_tail=torn,
            orphan_segments=orphans,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"WriteAheadLog(path={self.path!r}, last_seq={self._last_seq})"
