"""Offline search-parameter auto-tuner (recall target → tuned config).

The paper picks search parameters by hand per dataset (Table I/V:
``itopk`` 64–512, ``search_width`` 1–4 depending on recall regime).
This module automates that: given an index and a recall target, sweep
``itopk × search_width × max_iterations × team_size`` over a query
sample with the
lockstep fast path, measure genuine recall against the brute-force
oracle, price each point's operation counters with the GPU cost model
(same pipeline as :func:`repro.bench.harness.run_cagra_sweep`), and pick
the cheapest point on the recall/QPS frontier that meets the target.

The result is persisted as a :class:`repro.tune.profile.TunedProfile`
keyed by dataset fingerprint × index kind × k, so serving and the CLI
can apply it without re-tuning.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.bruteforce import exact_search
from repro.bench.harness import scale_report
from repro.core.config import SearchConfig, choose_algo
from repro.core.index import CagraIndex
from repro.core.metrics import recall as recall_of
from repro.gpusim import GpuCostModel
from repro.tune.profile import TunedPoint, TunedProfile, dataset_fingerprint

__all__ = ["TuneGrid", "tune_search_params", "sample_queries"]

#: Simulated launch batch used for QPS pricing (the paper's large-batch
#: throughput regime, Fig. 10).
DEFAULT_BATCH_SIZE = 10_000

#: Queries sampled from the dataset when the caller provides none.
DEFAULT_NUM_QUERIES = 128


@dataclass(frozen=True)
class TuneGrid:
    """The swept parameter grid.

    Defaults bracket the paper's hand-picked settings: ``itopk`` from
    just-above-``k`` to 2× the library default, widths 1/2/4, and the
    automatic iteration bound.  ``itopk`` values below ``k`` are dropped
    at sweep time (the internal list must hold the result).
    """

    itopk_values: tuple[int, ...] = (16, 32, 64, 96, 128)
    search_widths: tuple[int, ...] = (1, 2, 4)
    max_iterations_values: tuple[int, ...] = (0,)
    #: Distance-team widths swept (schema v2).  0 = auto from dim; the
    #: default sweeps only auto so v1-sized grids stay the same size —
    #: pass e.g. ``(0, 4, 8, 16, 32)`` to let the cost model separate
    #: per-team load waste at the dataset's dimensionality.
    team_size_values: tuple[int, ...] = (0,)

    def points(self, k: int):
        """Valid (itopk, search_width, max_iterations, team_size) tuples."""
        itopks = [m for m in self.itopk_values if m >= k] or [max(k, 16)]
        for itopk in itopks:
            for width in self.search_widths:
                for max_iter in self.max_iterations_values:
                    for team in self.team_size_values:
                        yield itopk, width, max_iter, team


def sample_queries(
    dataset: np.ndarray, num_queries: int = DEFAULT_NUM_QUERIES
) -> np.ndarray:
    """An evenly-strided row sample used as the tuning query set.

    Self-queries are fine for tuning: the sweep compares configurations
    against each other on identical queries, and recall@k against the
    exact oracle still separates under- from over-provisioned settings
    (the trivial self-hit occupies one of k slots for every config).
    """
    n = dataset.shape[0]
    take = max(1, min(int(num_queries), n))
    stride = max(1, n // take)
    return np.ascontiguousarray(dataset[::stride][:take])


def _measure_point(
    index: CagraIndex,
    queries: np.ndarray,
    truth: np.ndarray,
    k: int,
    config: SearchConfig,
    batch_size: int,
    gpu: GpuCostModel,
) -> TunedPoint:
    """Run one configuration and price it at the simulated batch size."""
    real_batch = queries.shape[0]
    result = index.search_fast(queries, k, config=config)
    report = scale_report(result.report, batch_size / real_batch)
    # Fig. 7 rule applies to the batch actually launched, not the probe.
    report.algo = choose_algo(config, batch_size, num_sms=gpu.spec.num_sms)
    timing = gpu.search_time(
        report,
        index.dim,
        dtype_bytes=index.dataset.dtype.itemsize,
        team_size=config.team_size,
        itopk=config.itopk,
        search_width=config.search_width,
    )
    return TunedPoint(
        itopk=config.itopk,
        search_width=config.search_width,
        max_iterations=config.max_iterations,
        recall=recall_of(result.indices, truth),
        qps=timing.qps(batch_size),
        distance_computations_per_query=result.report.distance_computations
        / real_batch,
        team_size=config.team_size,
    )


def _select(points: list[TunedPoint], recall_target: float) -> tuple[TunedPoint, bool]:
    """Cheapest point meeting the target, else the best-recall point."""
    eligible = [p for p in points if p.recall >= recall_target]
    if eligible:
        return max(eligible, key=lambda p: p.qps), True
    return max(points, key=lambda p: (p.recall, p.qps)), False


def tune_search_params(
    index: CagraIndex,
    k: int = 10,
    recall_target: float = 0.95,
    queries: np.ndarray | None = None,
    grid: TuneGrid | None = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
    num_queries: int = DEFAULT_NUM_QUERIES,
    base_config: SearchConfig | None = None,
    index_kind: str = "cagra",
    gpu: GpuCostModel | None = None,
    created: str = "",
    on_stage=None,
) -> TunedProfile:
    """Sweep the grid and return the tuned profile for (dataset, kind, k).

    ``queries`` defaults to a strided sample of the indexed dataset;
    ground truth always comes from the brute-force oracle so recall is
    genuine.  ``base_config`` seeds non-swept fields (seed, team size,
    hash policy).  ``on_stage("tune.point", seconds, counters)`` fires
    per grid point for unified instrumentation.
    """
    grid = grid or TuneGrid()
    gpu = gpu or GpuCostModel()
    base_config = base_config or SearchConfig()
    if queries is None:
        queries = sample_queries(index.dataset, num_queries)
    queries = np.atleast_2d(queries)
    truth, _ = exact_search(index.dataset, queries, k, metric=index.metric)

    sweep: list[TunedPoint] = []
    for itopk, width, max_iter, team in grid.points(k):
        config = base_config.with_overrides(
            itopk=itopk, search_width=width, max_iterations=max_iter,
            team_size=team,
        )
        started = time.perf_counter()
        point = _measure_point(index, queries, truth, k, config, batch_size, gpu)
        if on_stage is not None:
            on_stage(
                "tune.point",
                time.perf_counter() - started,
                {
                    "itopk": point.itopk,
                    "search_width": point.search_width,
                    "max_iterations": point.max_iterations,
                    "team_size": point.team_size,
                    "recall": point.recall,
                    "qps": point.qps,
                },
            )
        sweep.append(point)

    baseline_config = base_config.with_overrides(
        itopk=max(SearchConfig().itopk, k), search_width=1, max_iterations=0
    )
    baseline = next(
        (
            p
            for p in sweep
            if (p.itopk, p.search_width, p.max_iterations, p.team_size)
            == (
                baseline_config.itopk,
                baseline_config.search_width,
                baseline_config.max_iterations,
                baseline_config.team_size,
            )
        ),
        None,
    ) or _measure_point(index, queries, truth, k, baseline_config, batch_size, gpu)

    chosen, meets_target = _select(sweep, recall_target)
    return TunedProfile(
        fingerprint=dataset_fingerprint(index.dataset),
        index_kind=index_kind,
        metric=index.metric,
        k=k,
        recall_target=recall_target,
        batch_size=batch_size,
        chosen=chosen,
        baseline=baseline,
        meets_target=meets_target,
        sweep=tuple(sweep),
        created=created,
    )
