"""Offline search-parameter auto-tuning and tuned-profile persistence.

``tune_search_params`` sweeps ``itopk × search_width × max_iterations``
against a brute-force recall oracle and a GPU cost model; the winning
operating point is persisted as a :class:`TunedProfile` JSON keyed by
dataset fingerprint × index kind × k, loadable via ``--profile
auto|PATH`` on the CLI and ``ServeConfig.profile`` in the server.
"""

from repro.tune.profile import (
    PROFILE_SCHEMA_VERSION,
    ProfileError,
    ProfileWarning,
    TunedPoint,
    TunedProfile,
    dataset_fingerprint,
    default_profile_dir,
    find_profile,
    load_profile,
    profile_filename,
    resolve_profile,
    sniff_profile,
)
from repro.tune.tuner import TuneGrid, sample_queries, tune_search_params

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "ProfileError",
    "ProfileWarning",
    "TuneGrid",
    "TunedPoint",
    "TunedProfile",
    "dataset_fingerprint",
    "default_profile_dir",
    "find_profile",
    "load_profile",
    "profile_filename",
    "resolve_profile",
    "sample_queries",
    "sniff_profile",
    "tune_search_params",
]
