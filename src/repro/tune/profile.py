"""Tuned search-parameter profiles: persistence, fingerprints, resolution.

A :class:`TunedProfile` is the measured policy the paper's Table II rule
generalizes into: for one *dataset* (identified by a content
fingerprint), one *index kind*, and one *k*, it records the swept
``itopk × search_width × max_iterations`` operating points, the chosen
point for the recall target, and the default-config baseline it beat.
Profiles are plain JSON so they can be produced offline (``repro-cagra
tune``), committed next to an index artifact, and loaded by the CLI and
the serving layer (``--profile auto|PATH`` / ``ServeConfig.profile``).

Loading is defensive by contract: a corrupt file, an unknown schema, or
a fingerprint that no longer matches the dataset being served must fall
back to defaults with a :class:`ProfileWarning` — a stale profile is a
performance bug, never a crash.
"""

from __future__ import annotations

import hashlib
import json
import os
import warnings
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.config import SearchConfig

__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "ProfileError",
    "ProfileWarning",
    "TunedPoint",
    "TunedProfile",
    "dataset_fingerprint",
    "default_profile_dir",
    "find_profile",
    "load_profile",
    "profile_filename",
    "resolve_profile",
    "sniff_profile",
]

#: Schema history: v1 swept ``itopk × search_width × max_iterations``;
#: v2 adds ``team_size`` to every point (absent in v1 payloads → 0/auto,
#: so v1 profiles keep loading unchanged).
PROFILE_SCHEMA_VERSION = 2

#: Environment variable overriding the ``--profile auto`` search directory.
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

#: Rows sampled (evenly strided) into the dataset fingerprint.
_FINGERPRINT_SAMPLE_ROWS = 64


class ProfileError(ValueError):
    """A profile file is unreadable, corrupt, or schema-incompatible."""


class ProfileWarning(UserWarning):
    """A profile was ignored (corrupt/stale/mismatched) and defaults apply."""


def dataset_fingerprint(data: np.ndarray) -> str:
    """Stable content fingerprint of a dataset.

    Hashes the shape, dtype, and an evenly-strided row sample — cheap on
    multi-million-row datasets yet sensitive to scale, dimensionality,
    and content changes, which is what staleness detection needs (a
    profile tuned on other data must not silently apply).
    """
    data = np.ascontiguousarray(np.atleast_2d(data))
    digest = hashlib.sha256()
    digest.update(repr((data.shape, data.dtype.str)).encode())
    stride = max(1, data.shape[0] // _FINGERPRINT_SAMPLE_ROWS)
    digest.update(np.ascontiguousarray(data[::stride][:_FINGERPRINT_SAMPLE_ROWS]).tobytes())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class TunedPoint:
    """One measured operating point of the sweep."""

    itopk: int
    search_width: int
    max_iterations: int
    recall: float
    qps: float
    distance_computations_per_query: float
    team_size: int = 0  # schema v2; 0 = auto (v1 payloads load as auto)

    def config_mapping(self) -> dict:
        """The :meth:`SearchConfig.from_mapping` payload for this point.

        ``team_size`` is only emitted when genuinely tuned (non-zero):
        0 means "auto" *and* "v1 profile that never swept the axis", and
        neither should clobber a caller-chosen team size in ``base``.
        """
        mapping = {
            "itopk": self.itopk,
            "search_width": self.search_width,
            "max_iterations": self.max_iterations,
        }
        if self.team_size:
            mapping["team_size"] = self.team_size
        return mapping


@dataclass(frozen=True)
class TunedProfile:
    """A persisted tuned operating point for (dataset, index kind, k)."""

    fingerprint: str
    index_kind: str
    metric: str
    k: int
    recall_target: float
    batch_size: int
    chosen: TunedPoint
    baseline: TunedPoint
    meets_target: bool
    sweep: tuple[TunedPoint, ...] = field(default_factory=tuple)
    created: str = ""
    version: int = PROFILE_SCHEMA_VERSION

    def search_config(
        self, base: SearchConfig | None = None, **overrides
    ) -> SearchConfig:
        """The tuned :class:`SearchConfig` (optionally over ``base``)."""
        return SearchConfig.from_mapping(
            self.chosen.config_mapping(), base=base, **overrides
        )

    def speedup(self) -> float:
        """Tuned-over-baseline QPS ratio at the profile's batch size."""
        return self.chosen.qps / self.baseline.qps if self.baseline.qps else 0.0

    def matches(self, data: np.ndarray, index_kind: str, k: int) -> bool:
        """Whether this profile was tuned for exactly this workload."""
        return (
            self.fingerprint == dataset_fingerprint(data)
            and self.index_kind == index_kind
            and self.k == k
        )

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["sweep"] = [asdict(point) for point in self.sweep]
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TunedProfile":
        try:
            version = int(payload["version"])
            if version > PROFILE_SCHEMA_VERSION:
                raise ProfileError(
                    f"profile schema v{version} is newer than supported "
                    f"v{PROFILE_SCHEMA_VERSION}"
                )
            return cls(
                fingerprint=str(payload["fingerprint"]),
                index_kind=str(payload["index_kind"]),
                metric=str(payload["metric"]),
                k=int(payload["k"]),
                recall_target=float(payload["recall_target"]),
                batch_size=int(payload["batch_size"]),
                chosen=_point_from_dict(payload["chosen"]),
                baseline=_point_from_dict(payload["baseline"]),
                meets_target=bool(payload["meets_target"]),
                sweep=tuple(_point_from_dict(p) for p in payload.get("sweep", [])),
                created=str(payload.get("created", "")),
                version=version,
            )
        except ProfileError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ProfileError(f"malformed profile payload: {exc}") from exc

    def save(self, path: str) -> str:
        """Write the profile JSON; returns the path written."""
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path


def _point_from_dict(payload: dict) -> TunedPoint:
    return TunedPoint(
        itopk=int(payload["itopk"]),
        search_width=int(payload["search_width"]),
        max_iterations=int(payload["max_iterations"]),
        recall=float(payload["recall"]),
        qps=float(payload["qps"]),
        distance_computations_per_query=float(
            payload["distance_computations_per_query"]
        ),
        team_size=int(payload.get("team_size", 0)),  # v1 read-compat
    )


def load_profile(path: str) -> TunedProfile:
    """Load a profile JSON; raises :class:`ProfileError` on any defect."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ProfileError(f"cannot read profile {path!r}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProfileError(f"profile {path!r} is not a JSON object")
    return TunedProfile.from_dict(payload)


def sniff_profile(path: str) -> dict | None:
    """Cheap identity probe: the (fingerprint, index_kind, k, version)
    of a profile file, or None if the file is not a readable profile."""
    try:
        profile = load_profile(path)
    except ProfileError:
        return None
    return {
        "fingerprint": profile.fingerprint,
        "index_kind": profile.index_kind,
        "k": profile.k,
        "version": profile.version,
    }


def default_profile_dir() -> str:
    """``--profile auto`` search directory (env override, else ./profiles)."""
    return os.environ.get(PROFILE_DIR_ENV) or os.path.join(os.curdir, "profiles")


def profile_filename(fingerprint: str, index_kind: str, k: int) -> str:
    """Canonical auto-discovery filename for a profile."""
    return f"profile-{index_kind}-k{k}-{fingerprint}.json"


def find_profile(
    directory: str, data: np.ndarray, index_kind: str, k: int
) -> TunedProfile | None:
    """Scan ``directory`` for a profile matching (dataset, kind, k).

    The canonical filename is probed first; otherwise every ``*.json``
    in the directory is sniffed.  Unreadable files are skipped.
    """
    fingerprint = dataset_fingerprint(data)
    canonical = os.path.join(directory, profile_filename(fingerprint, index_kind, k))
    candidates = [canonical] if os.path.exists(canonical) else []
    if not candidates and os.path.isdir(directory):
        candidates = sorted(
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.endswith(".json")
        )
    for path in candidates:
        try:
            profile = load_profile(path)
        except ProfileError:
            continue
        if (
            profile.fingerprint == fingerprint
            and profile.index_kind == index_kind
            and profile.k == k
        ):
            return profile
    return None


def resolve_profile(
    spec: str,
    *,
    data: np.ndarray,
    index_kind: str,
    k: int,
    profile_dir: str | None = None,
) -> TunedProfile | None:
    """Resolve ``--profile auto|PATH`` into a profile, or None + warning.

    ``auto`` searches the profile directory for an exact
    (fingerprint, kind, k) match.  An explicit path is loaded and
    validated against the live workload — corrupt files and stale
    fingerprints warn (:class:`ProfileWarning`) and return None so the
    caller falls back to default parameters, never crashes.
    """
    if not spec:
        return None
    if spec == "auto":
        directory = profile_dir or default_profile_dir()
        profile = find_profile(directory, data, index_kind, k)
        if profile is None:
            warnings.warn(
                f"no tuned profile for this (dataset, {index_kind}, k={k}) "
                f"under {directory!r}; using default search parameters "
                f"(run `repro-cagra tune` to create one)",
                ProfileWarning,
                stacklevel=2,
            )
        return profile
    try:
        profile = load_profile(spec)
    except ProfileError as exc:
        warnings.warn(
            f"ignoring profile {spec!r}: {exc}; using default search parameters",
            ProfileWarning,
            stacklevel=2,
        )
        return None
    if not profile.matches(data, index_kind, k):
        warnings.warn(
            f"profile {spec!r} was tuned for "
            f"(fingerprint={profile.fingerprint}, kind={profile.index_kind}, "
            f"k={profile.k}) but this workload is "
            f"(fingerprint={dataset_fingerprint(data)}, kind={index_kind}, "
            f"k={k}); ignoring it and using default search parameters",
            ProfileWarning,
            stacklevel=2,
        )
        return None
    return profile
