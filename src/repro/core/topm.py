"""Top-M buffer maintenance (Sec. IV-B2).

Step ① of the search keeps the best ``M`` (id, distance) pairs of the
whole buffer.  On the GPU this is a *merge*, not a full sort: the internal
top-M part is already sorted, so the kernel sorts only the candidate part
(warp-level bitonic sort when it fits in registers, i.e. length <= 512;
a CTA-wide radix sort otherwise) and bitonic-merges the two runs.

Functionally a merge is a merge, so :func:`merge_topm` produces the result
with NumPy; :func:`bitonic_sort` is a real bitonic network used to (a)
count comparator stages for the cost model and (b) let the tests verify
the network against the NumPy result.  :func:`sort_strategy` encodes the
<=512 register-sort rule so the cost model charges the right kernel.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bitonic_sort",
    "bitonic_merge",
    "bitonic_comparator_count",
    "merge_topm",
    "radix_topk",
    "sort_strategy",
]


def _next_pow2(x: int) -> int:
    return 1 if x <= 1 else 1 << (x - 1).bit_length()


def bitonic_sort(keys: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort (keys, values) pairs ascending by key with a bitonic network.

    Inputs of non-power-of-two length are padded with ``+inf`` keys, which
    is exactly what the CUDA kernel does with its register slack.
    """
    n = len(keys)
    size = _next_pow2(n)
    k = np.full(size, np.inf, dtype=np.float64)
    v = np.zeros(size, dtype=np.asarray(values).dtype)
    k[:n] = keys
    v[:n] = values

    stage = 2
    while stage <= size:
        step = stage // 2
        while step >= 1:
            idx = np.arange(size, dtype=np.int64)
            partner = idx ^ step
            active = partner > idx
            i = idx[active]
            j = partner[active]
            ascending = (i & stage) == 0
            swap = np.where(ascending, k[i] > k[j], k[i] < k[j])
            si, sj = i[swap], j[swap]
            k[si], k[sj] = k[sj].copy(), k[si].copy()
            v[si], v[sj] = v[sj].copy(), v[si].copy()
            step //= 2
        stage *= 2
    return k[:n], v[:n]


def bitonic_comparator_count(length: int) -> int:
    """Number of compare-exchange operations a bitonic sort of ``length``
    elements performs: ``(n/2) * s * (s+1) / 2`` with ``s = log2(n)``."""
    n = _next_pow2(length)
    if n <= 1:
        return 0
    stages = n.bit_length() - 1
    return (n // 2) * stages * (stages + 1) // 2


def merge_topm(
    topm_ids: np.ndarray,
    topm_dists: np.ndarray,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge the candidate list into the internal top-M list.

    Both inputs carry (id, distance) pairs; ids may have the MSB parented
    flag set — the flag travels with the entry, as it does in the CUDA
    buffer.  Duplicate node ids (ignoring the flag) keep the entry that
    appears first in (top-M, candidates) order so a parented copy in the
    top-M list is never displaced by its unparented twin from the
    candidate list.

    Returns new ``(ids, dists)`` arrays of length ``m``, sorted ascending
    by distance; short inputs are padded with ``inf`` / dummy ids just
    like the initialization step's dummy entries.
    """
    from repro.core.graph import INDEX_MASK

    ids = np.concatenate([topm_ids, cand_ids]).astype(np.uint32)
    dists = np.concatenate([topm_dists, cand_dists]).astype(np.float64)

    # Drop duplicate bare ids, keeping the first (top-M-first) occurrence.
    bare = ids & INDEX_MASK
    first = np.zeros(len(ids), dtype=bool)
    seen_order = np.argsort(bare, kind="stable")
    sorted_bare = bare[seen_order]
    is_first = np.ones(len(ids), dtype=bool)
    is_first[1:] = sorted_bare[1:] != sorted_bare[:-1]
    first[seen_order] = is_first
    ids = ids[first]
    dists = dists[first]

    order = np.argsort(dists, kind="stable")[:m]
    out_ids = ids[order]
    out_dists = dists[order]
    if len(out_ids) < m:
        pad = m - len(out_ids)
        out_ids = np.concatenate([out_ids, np.full(pad, INDEX_MASK, dtype=np.uint32)])
        out_dists = np.concatenate([out_dists, np.full(pad, np.inf)])
    return out_ids, out_dists


def bitonic_merge(
    keys_a: np.ndarray,
    values_a: np.ndarray,
    keys_b: np.ndarray,
    values_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Merge two *sorted* runs with a bitonic merge network.

    This is the cheap path of Sec. IV-B2: the internal top-M part is
    already sorted, so after sorting only the candidate part the kernel
    merges the two runs with ``log2(n)`` comparator stages instead of a
    full sort.  Reversing the second run makes the concatenation bitonic;
    the merge network then sorts it.
    """
    n_a, n_b = len(keys_a), len(keys_b)
    total = n_a + n_b
    size = _next_pow2(total)
    k = np.full(size, np.inf, dtype=np.float64)
    v = np.zeros(size, dtype=np.asarray(values_a).dtype if n_a else
                 np.asarray(values_b).dtype)
    k[:n_a] = keys_a
    v[:n_a] = values_a
    # Second run reversed: ascending-then-descending = bitonic.  The inf
    # padding sits between the runs, which keeps the sequence bitonic.
    k[size - n_b:] = keys_b[::-1]
    v[size - n_b:] = values_b[::-1]

    step = size // 2
    while step >= 1:
        idx = np.arange(size, dtype=np.int64)
        partner = idx ^ step
        active = partner > idx
        i = idx[active]
        j = partner[active]
        swap = k[i] > k[j]
        si, sj = i[swap], j[swap]
        k[si], k[sj] = k[sj].copy(), k[si].copy()
        v[si], v[sj] = v[sj].copy(), v[si].copy()
        step //= 2
    return k[:total], v[:total]


def radix_topk(
    keys: np.ndarray, values: np.ndarray, m: int
) -> tuple[np.ndarray, np.ndarray]:
    """Top-``m`` selection via an LSD byte-radix sort of float keys.

    The >512-candidate path of Sec. IV-B2 uses a CTA-wide radix sort; this
    is the same algorithm: non-negative float32 keys are order-preserving
    when reinterpreted as uint32, so four stable byte passes sort them.
    Negative keys (inner-product "distances") are offset into the
    non-negative range first.
    """
    keys = np.asarray(keys, dtype=np.float64)
    values = np.asarray(values)
    if len(keys) == 0:
        return keys[:0], values[:0]
    finite = keys[np.isfinite(keys)]
    offset = float(finite.min()) if len(finite) and finite.min() < 0 else 0.0
    shifted = np.where(np.isfinite(keys), keys - offset, np.inf)
    bits = shifted.astype(np.float32).view(np.uint32).astype(np.uint64)

    order = np.arange(len(keys))
    for byte in range(4):  # LSD passes over the float32 bit pattern
        digits = (bits[order] >> np.uint64(8 * byte)) & np.uint64(0xFF)
        order = order[np.argsort(digits, kind="stable")]
    take = order[:m]
    return keys[take], values[take]


def sort_strategy(candidate_length: int) -> str:
    """Kernel choice of Sec. IV-B2: warp bitonic for <=512 candidates,
    CTA radix sort above."""
    return "warp_bitonic" if candidate_length <= 512 else "cta_radix"
