"""Candidate refinement (re-ranking).

The production CAGRA pipeline pairs low-precision search with a
full-precision *refine* step: search the FP16 index for ``k' > k``
candidates, then recompute their distances against the FP32 vectors and
keep the best ``k``.  This recovers any recall the quantized distances
cost at a tiny additional price (``k'`` exact distances per query).

:func:`refine` is index-agnostic: it re-ranks any candidate lists against
any dataset, so it also serves as a generic post-processing utility
(e.g. re-ranking a sharded search's merge under a different metric).
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import METRICS, gathered_distances

__all__ = ["refine"]


def refine(
    dataset: np.ndarray,
    queries: np.ndarray,
    candidates: np.ndarray,
    k: int,
    metric: str = "sqeuclidean",
) -> tuple[np.ndarray, np.ndarray]:
    """Re-rank candidate ids with exact distances and keep the top-k.

    Args:
        dataset: ``(N, dim)`` full-precision vectors.
        queries: ``(batch, dim)`` query vectors.
        candidates: ``(batch, k')`` candidate ids with ``k' >= k``;
            duplicate ids within a row are tolerated (the duplicate's
            second copy simply loses).
        k: results per query to keep.
        metric: distance metric for the re-ranking.

    Returns:
        ``(indices, distances)`` of shape ``(batch, k)``, sorted ascending.
    """
    if metric not in METRICS:
        raise ValueError(f"metric must be one of {METRICS}")
    queries = np.atleast_2d(queries)
    candidates = np.atleast_2d(np.asarray(candidates, dtype=np.int64))
    if candidates.shape[0] != queries.shape[0]:
        raise ValueError("one candidate row per query required")
    if k > candidates.shape[1]:
        raise ValueError(f"k={k} exceeds candidate width {candidates.shape[1]}")

    dists = gathered_distances(dataset, queries, candidates, metric=metric)
    # Push duplicate ids to the back so they cannot occupy two slots.
    order = np.lexsort((dists, candidates), axis=1)
    sorted_ids = np.take_along_axis(candidates, order, axis=1)
    sorted_dists = np.take_along_axis(dists, order, axis=1)
    dup = np.zeros_like(sorted_dists, dtype=bool)
    dup[:, 1:] = sorted_ids[:, 1:] == sorted_ids[:, :-1]
    sorted_dists[dup] = np.inf

    keep = np.argsort(sorted_dists, axis=1, kind="stable")[:, :k]
    out_ids = np.take_along_axis(sorted_ids, keep, axis=1).astype(np.uint32)
    out_dists = np.take_along_axis(sorted_dists, keep, axis=1)
    return out_ids, out_dists
