"""Deprecated home of the vectorized lockstep batch search.

The fast path moved into the unified array-parallel engine at
:mod:`repro.core.traversal` (``TraversalEngine`` / its functional wrapper
``search_batch_fast``), which adds dead-query compaction, an fp16 dataset
path and team_size-aware cost accounting while staying bitwise-identical
to the implementation that used to live here (ids, distances and every
``CostReport`` counter are pinned by the regression fixture).

This module remains for one release as a PEP 562 forwarding shim:
importing ``search_batch_fast`` from here warns and hands back the engine
wrapper.  Private helpers (``_merge_rows`` and friends) moved to
:mod:`repro.core.traversal`; import them from there.
"""

from __future__ import annotations

import warnings

# search_batch_fast is provided via module __getattr__ (deprecation shim).
__all__ = ["search_batch_fast"]  # repro-lint: disable=RL005 — deprecation alias via module __getattr__


def __getattr__(name: str):
    if name == "search_batch_fast":
        warnings.warn(
            "repro.core.batch_search is deprecated; import search_batch_fast "
            "from repro.core.traversal (or use TraversalEngine directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.traversal import search_batch_fast

        return search_batch_fast
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
