"""Vectorized lockstep batch search — the library's fast path.

The reference implementation in :mod:`repro.core.search` mirrors the CUDA
kernel query-by-query, which is the right shape for counter fidelity but
slow in Python.  This module runs *all* queries' search loops in lockstep
as whole-batch NumPy operations — the same algorithm (top-M buffer,
parented MSB flags, first-time-only distance computation), with two
simplifications relative to the reference:

* the visited structure is an exact per-query boolean table rather than a
  lossy open-addressing hash (so it matches the *standard* hash table's
  semantics; forgettable resets are not emulated), and
* all candidate distances of an iteration are computed in one gathered
  batch, with already-visited candidates masked to ``+inf`` afterwards
  (the counters still record only first-time computations, which is what
  the cost model prices).

Recall/throughput characteristics match the reference within noise; the
test suite cross-checks the two implementations.  Use this for bulk
offline evaluation; use :func:`repro.core.search.search_batch` when you
need faithful forgettable-hash behaviour or multi-CTA mapping.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SearchConfig
from repro.core.distances import gathered_distances
from repro.core.graph import INDEX_MASK, PARENT_FLAG, FixedDegreeGraph
from repro.core.rng_init import random_init_block
from repro.core.search import CostReport, SearchResult
from repro.core.topm import bitonic_comparator_count, sort_strategy

__all__ = ["search_batch_fast"]


def _first_occurrence_rows(ids: np.ndarray) -> np.ndarray:
    """Mask of the first occurrence of each value within its row.

    The reference path feeds candidates one by one through the hash
    table, so when a node id appears twice in the same gather only the
    first occurrence reports "new" (one distance computation, one hash
    insertion).  The lockstep path must dedupe the same way *before*
    consulting the visited table, or intra-gather duplicates are
    double-counted.
    """
    order = np.argsort(ids, axis=1, kind="stable")
    sorted_ids = np.take_along_axis(ids, order, axis=1)
    first_sorted = np.ones(ids.shape, dtype=bool)
    first_sorted[:, 1:] = sorted_ids[:, 1:] != sorted_ids[:, :-1]
    first = np.empty(ids.shape, dtype=bool)
    np.put_along_axis(first, order, first_sorted, axis=1)
    return first


def _charge_iteration_sort(
    report: CostReport, lengths: np.ndarray, itopk: int
) -> None:
    """Meter step ①'s sort+merge for the active lockstep queries.

    ``lengths`` holds each query's *current* candidate-list length: the
    reference path charges ``_charge_sort`` with the actual gather size,
    which drops below ``search_width * degree`` when a query has fewer
    unparented top-M entries than ``search_width`` — so must we.
    """
    for length, count in zip(*np.unique(lengths, return_counts=True)):
        length, count = int(length), int(count)
        if length == 0:
            continue
        if sort_strategy(length) == "warp_bitonic":
            report.sort_comparator_ops += count * bitonic_comparator_count(length)
        else:
            report.radix_sorted_elements += count * length
        merged = itopk + length
        report.sort_comparator_ops += count * (
            bitonic_comparator_count(merged) // max(1, merged.bit_length()) * 2
        )


def _merge_rows(
    topm_ids: np.ndarray,
    topm_dists: np.ndarray,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized per-row merge_topm: dedupe bare ids (top-M copy wins),
    keep the best ``m`` by distance."""
    ids = np.concatenate([topm_ids, cand_ids], axis=1)
    dists = np.concatenate([topm_dists, cand_dists], axis=1)
    bare = (ids & INDEX_MASK).astype(np.int64)

    # Order by (bare id, original position): the first occurrence of each
    # bare id is the top-M copy when both exist.
    position = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
    order = np.lexsort((position, bare), axis=1)
    sorted_ids = np.take_along_axis(ids, order, axis=1)
    sorted_bare = np.take_along_axis(bare, order, axis=1)
    sorted_dists = np.take_along_axis(dists, order, axis=1)
    dup = np.zeros_like(sorted_dists, dtype=bool)
    dup[:, 1:] = sorted_bare[:, 1:] == sorted_bare[:, :-1]
    sorted_dists = np.where(dup, np.inf, sorted_dists)
    # Dummy entries (INDEX_MASK) deduped too; re-pad below via inf sort.

    keep = np.argsort(sorted_dists, axis=1, kind="stable")[:, :m]
    out_ids = np.take_along_axis(sorted_ids, keep, axis=1)
    out_dists = np.take_along_axis(sorted_dists, keep, axis=1)
    # Re-normalize removed dummies: positions with inf distance become
    # dummies again (their stale ids must not be treated as parents).
    out_ids = np.where(np.isinf(out_dists), INDEX_MASK, out_ids)
    return out_ids.astype(np.uint32), out_dists


#: Budget for the per-chunk visited table (bytes); chunks are sized so
#: ``chunk * N`` bools stay below this.
_VISITED_BUDGET_BYTES = 256 * 1024 * 1024


def search_batch_fast(
    data: np.ndarray,
    graph: FixedDegreeGraph,
    queries: np.ndarray,
    k: int,
    config: SearchConfig | None = None,
    metric: str = "sqeuclidean",
    filter_mask: np.ndarray | None = None,
) -> SearchResult:
    """Lockstep single-CTA-semantics search over a whole query batch.

    Arguments mirror :func:`repro.core.search.search_batch`; the ``algo``
    field of ``config`` is ignored (this path implements the single-CTA
    algorithm with exact visited tracking).  Large batches are chunked
    automatically so the per-query visited table stays within a fixed
    memory budget.
    """
    queries = np.atleast_2d(queries)
    chunk = max(1, _VISITED_BUDGET_BYTES // max(1, graph.num_nodes))
    if queries.shape[0] > chunk:
        pieces = [
            _search_chunk_fast(
                data, graph, queries[start : start + chunk], k, config, metric,
                filter_mask, seed_offset=start,
            )
            for start in range(0, queries.shape[0], chunk)
        ]
        indices = np.concatenate([p.indices for p in pieces])
        distances = np.concatenate([p.distances for p in pieces])
        # Accumulate into a fresh report: merge_from mutates its target,
        # and aliasing the first chunk's report would corrupt that
        # chunk's own counters (and overwrite its batch_size).
        total = CostReport(
            algo="single_cta",
            batch_size=queries.shape[0],
            hash_in_shared=True,
            hash_log2_size=11,
            kernel_launches=1,
        )
        for piece in pieces:
            total.merge_from(piece.report)
        return SearchResult(indices=indices, distances=distances, report=total)
    return _search_chunk_fast(data, graph, queries, k, config, metric, filter_mask)


def _search_chunk_fast(
    data: np.ndarray,
    graph: FixedDegreeGraph,
    queries: np.ndarray,
    k: int,
    config: SearchConfig | None = None,
    metric: str = "sqeuclidean",
    filter_mask: np.ndarray | None = None,
    seed_offset: int = 0,
) -> SearchResult:
    """One lockstep chunk (see :func:`search_batch_fast`)."""
    config = config or SearchConfig()
    queries = np.atleast_2d(queries)
    if k < 1:
        raise ValueError("k must be >= 1")
    itopk = max(config.itopk, k)
    if k > itopk:
        raise ValueError(f"k={k} exceeds itopk={itopk}")
    if filter_mask is not None:
        filter_mask = np.asarray(filter_mask, dtype=bool)
        if filter_mask.shape != (graph.num_nodes,):
            raise ValueError("filter_mask must have one entry per dataset row")
        if not filter_mask.any():
            raise ValueError("filter_mask excludes every node")

    n = graph.num_nodes
    degree = graph.degree
    batch = queries.shape[0]
    width = config.search_width * degree
    max_iter = config.resolved_max_iterations()

    report = CostReport(
        algo="single_cta",
        batch_size=batch,
        cta_count=batch,
        hash_in_shared=True,
        hash_log2_size=11,
        kernel_launches=1,
    )

    # ⓪ per-query random initialization (bit-identical to the reference's
    # per-query default_rng streams, vectorized across the batch).
    cand_ids = random_init_block(config.seed, seed_offset, batch, n, width)
    report.random_inits = batch * width

    visited = np.zeros((batch, n), dtype=bool)
    rows = np.arange(batch)[:, None]
    cand_int = cand_ids.astype(np.int64)
    # Only the first occurrence of a node within a row's gather is a
    # first-time computation — the reference hash table counts a
    # duplicated seed once (satellite: intra-gather dedupe before the
    # visited write, not after).
    fresh = _first_occurrence_rows(cand_int) & ~visited[rows, cand_int]
    visited[rows, cand_int] = True
    cand_dists = gathered_distances(data, queries, cand_int, metric)
    cand_dists = np.where(fresh, cand_dists, np.inf)
    if filter_mask is not None:
        cand_dists = np.where(filter_mask[cand_int], cand_dists, np.inf)
    report.distance_computations += int(fresh.sum())
    report.skipped_distance_computations += int((~fresh).sum())
    report.hash_lookups += fresh.size
    report.hash_probes += 2 * fresh.size
    report.hash_insertions += int(fresh.sum())

    topm_ids = np.full((batch, itopk), INDEX_MASK, dtype=np.uint32)
    topm_dists = np.full((batch, itopk), np.inf)
    active = np.ones(batch, dtype=bool)
    cand_width = np.full(batch, width, dtype=np.int64)
    p = config.search_width

    iteration = 0
    while iteration < max_iter and active.any():
        iteration += 1
        report.iterations += int(active.sum())
        _charge_iteration_sort(report, cand_width[active], itopk)

        # ① merge candidates into the top-M buffer.
        topm_ids, topm_dists = _merge_rows(
            topm_ids, topm_dists, cand_ids, cand_dists, itopk
        )

        # ② pick the best p unparented entries per row.
        selectable = ((topm_ids & PARENT_FLAG) == 0) & (topm_ids != INDEX_MASK)
        selectable &= active[:, None]
        # Stable argsort pushes selectable positions (False<True inverted)
        # to the front in top-M (distance) order.
        pick_order = np.argsort(~selectable, axis=1, kind="stable")[:, :p]
        picked_mask = np.take_along_axis(selectable, pick_order, axis=1)
        has_any = picked_mask.any(axis=1)
        active &= has_any
        if not active.any():
            break

        parent_entries = np.take_along_axis(topm_ids, pick_order, axis=1)
        parent_nodes = (parent_entries & INDEX_MASK).astype(np.int64)
        # Mark parents (only where actually selectable and active).
        flagged = np.where(
            picked_mask & active[:, None],
            parent_entries | PARENT_FLAG,
            parent_entries,
        )
        np.put_along_axis(topm_ids, pick_order, flagged, axis=1)

        # Inactive/unselected slots traverse a harmless stand-in (node 0)
        # whose candidates are masked to inf below.
        usable = picked_mask & active[:, None]
        parent_nodes = np.where(usable, parent_nodes, 0)

        # ② gather neighbors, ③ compute first-time distances.
        cand_ids = graph.neighbors[parent_nodes].reshape(batch, -1)
        cand_width = usable.sum(axis=1) * degree
        report.candidate_gathers += int(usable.sum()) * degree
        cand_int = cand_ids.astype(np.int64)
        lane_usable = np.repeat(usable, degree, axis=1)
        # Dedupe within the gather: stand-in lanes are remapped to unique
        # out-of-range sentinels so they can never claim a real node's
        # first occurrence, then only first occurrences of usable lanes
        # count as first-time computations (reference hash semantics).
        lane_ids = np.where(lane_usable, cand_int, n + np.arange(width, dtype=np.int64))
        fresh = _first_occurrence_rows(lane_ids) & lane_usable & ~visited[rows, cand_int]
        visited[rows, cand_int] |= lane_usable
        cand_dists = gathered_distances(data, queries, cand_int, metric)
        cand_dists = np.where(fresh, cand_dists, np.inf)
        if filter_mask is not None:
            cand_dists = np.where(filter_mask[cand_int], cand_dists, np.inf)
        report.distance_computations += int(fresh.sum())
        report.skipped_distance_computations += int((lane_usable & ~fresh).sum())
        report.hash_lookups += int(lane_usable.sum())
        report.hash_probes += 2 * int(lane_usable.sum())
        report.hash_insertions += int(fresh.sum())

    indices = (topm_ids[:, :k] & INDEX_MASK).astype(np.uint32)
    distances = topm_dists[:, :k].copy()
    return SearchResult(indices=indices, distances=distances, report=report)
