"""Distance kernels used throughout the reproduction.

All kernels are batched NumPy operations.  Internally the library works with
*L2 squared* distances (monotone with the L2 norm, so top-k results are
identical) unless the metric is inner product or cosine.

The paper stores datasets either in FP32 or FP16 (Sec. V-C: "we can gain
higher throughput using half-precision (FP16) for the vector data type").
We emulate FP16 storage by rounding the dataset to ``float16`` and widening
to ``float32`` for arithmetic, which matches what the CUDA kernels do with
``half2`` loads and FP32 accumulation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "METRICS",
    "pairwise_distances",
    "distances_to_query",
    "gathered_distances",
    "normalize_rows",
    "as_storage_dtype",
    "distance_function",
]

#: Metric names accepted by the public API.
METRICS = ("sqeuclidean", "inner_product", "cosine")


def _check_metric(metric: str) -> None:
    if metric not in METRICS:
        raise ValueError(f"unknown metric {metric!r}; expected one of {METRICS}")


def normalize_rows(data: np.ndarray) -> np.ndarray:
    """Return ``data`` with every row scaled to unit L2 norm.

    Zero rows are left untouched (they would otherwise become NaN).
    """
    norms = np.linalg.norm(data, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return data / norms


def as_storage_dtype(data: np.ndarray, dtype: str = "float32") -> np.ndarray:
    """Convert a dataset to its storage dtype (``float32`` or ``float16``).

    FP16 storage emulates the paper's half-precision mode: values are
    quantized to half precision but all arithmetic later happens in FP32.
    """
    if dtype not in ("float32", "float16"):
        raise ValueError(f"storage dtype must be float32 or float16, got {dtype!r}")
    return np.ascontiguousarray(data, dtype=dtype)


def _compute_dtype(data: np.ndarray) -> np.dtype:
    """Arithmetic dtype for a stored dataset (always at least float32)."""
    return np.dtype(np.float64) if data.dtype == np.float64 else np.dtype(np.float32)


def pairwise_distances(
    a: np.ndarray, b: np.ndarray, metric: str = "sqeuclidean"
) -> np.ndarray:
    """Dense ``(len(a), len(b))`` distance matrix between two row sets.

    For ``inner_product`` and ``cosine`` the returned values are *negated*
    similarities so that smaller is always better, uniformly with L2².
    """
    _check_metric(metric)
    dtype = _compute_dtype(a)
    a = np.asarray(a, dtype=dtype)
    b = np.asarray(b, dtype=dtype)
    if metric == "cosine":
        a = normalize_rows(a)
        b = normalize_rows(b)
    if metric in ("inner_product", "cosine"):
        return -(a @ b.T)
    # ||a - b||^2 = ||a||^2 - 2 a.b + ||b||^2, clipped to guard against
    # negative values from floating point cancellation.
    sq_a = np.einsum("ij,ij->i", a, a)[:, None]
    sq_b = np.einsum("ij,ij->i", b, b)[None, :]
    d = sq_a - 2.0 * (a @ b.T) + sq_b
    np.maximum(d, 0.0, out=d)
    return d


def distances_to_query(
    data: np.ndarray,
    query: np.ndarray,
    indices: np.ndarray | None = None,
    metric: str = "sqeuclidean",
) -> np.ndarray:
    """Distances from one query vector to ``data[indices]`` (or all rows)."""
    _check_metric(metric)
    dtype = _compute_dtype(data)
    rows = data if indices is None else data[indices]
    rows = np.asarray(rows, dtype=dtype)
    q = np.asarray(query, dtype=dtype)
    if metric == "cosine":
        rows = normalize_rows(rows)
        nq = np.linalg.norm(q)
        if nq > 0.0:
            q = q / nq
    if metric in ("inner_product", "cosine"):
        return -(rows @ q)
    diff = rows - q
    return np.einsum("ij,ij->i", diff, diff)


def gathered_distances(
    data: np.ndarray,
    queries: np.ndarray,
    indices: np.ndarray,
    metric: str = "sqeuclidean",
) -> np.ndarray:
    """Row-wise gathered distances.

    ``indices`` has shape ``(n_queries, width)``; the result ``[i, j]`` is the
    distance between ``queries[i]`` and ``data[indices[i, j]]``.  This is the
    access pattern of the CAGRA candidate-list distance step (step ③).
    """
    _check_metric(metric)
    dtype = _compute_dtype(data)
    gathered = np.asarray(data[indices], dtype=dtype)  # (q, w, dim)
    q = np.asarray(queries, dtype=dtype)[:, None, :]  # (q, 1, dim)
    if metric == "cosine":
        norms = np.linalg.norm(gathered, axis=2, keepdims=True)
        norms[norms == 0.0] = 1.0
        gathered = gathered / norms
        qn = np.linalg.norm(q, axis=2, keepdims=True)
        qn[qn == 0.0] = 1.0
        q = q / qn
    if metric in ("inner_product", "cosine"):
        return -np.einsum("qwd,qod->qw", gathered, q)
    diff = gathered - q
    return np.einsum("qwd,qwd->qw", diff, diff)


def distance_function(metric: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Scalar two-vector distance, mostly for tests and reference code."""
    _check_metric(metric)

    def _sqeuclidean(x: np.ndarray, y: np.ndarray) -> float:
        d = np.asarray(x, dtype=np.float64) - np.asarray(y, dtype=np.float64)
        return float(d @ d)

    def _inner_product(x: np.ndarray, y: np.ndarray) -> float:
        return -float(np.asarray(x, dtype=np.float64) @ np.asarray(y, dtype=np.float64))

    def _cosine(x: np.ndarray, y: np.ndarray) -> float:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        nx, ny = np.linalg.norm(x), np.linalg.norm(y)
        if nx == 0.0 or ny == 0.0:
            return 0.0
        return -float(x @ y) / (nx * ny)

    return {
        "sqeuclidean": _sqeuclidean,
        "inner_product": _inner_product,
        "cosine": _cosine,
    }[metric]
