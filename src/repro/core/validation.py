"""Index integrity validation.

``validate_index`` audits a :class:`~repro.core.index.CagraIndex` the way
an operator would before shipping it to serving: structural invariants
(shape agreement, id ranges, fixed degree, duplicates, self-loops) plus
the reachability statistics the paper optimizes (strong CC count, 2-hop
node counts).  Returns a :class:`ValidationReport`; nothing raises, so it
can run on intentionally degraded indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.index import CagraIndex
from repro.core.metrics import average_two_hop_count, strong_connected_components

__all__ = ["ValidationReport", "validate_index"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_index`.

    ``ok`` aggregates the structural checks; reachability statistics are
    informational (a valid index can still have poor reachability).
    """

    ok: bool
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    num_nodes: int = 0
    degree: int = 0
    self_loops: int = 0
    duplicate_edges: int = 0
    min_in_degree: int = 0
    strong_components: int = 0
    avg_two_hop: float = 0.0
    two_hop_fraction_of_max: float = 0.0

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        status = "OK" if self.ok else "INVALID"
        lines = [
            f"index {status}: {self.num_nodes} nodes, degree {self.degree}",
            f"  self-loops: {self.self_loops}, duplicate edges: "
            f"{self.duplicate_edges}, min in-degree: {self.min_in_degree}",
            f"  strong CC: {self.strong_components}, avg 2-hop: "
            f"{self.avg_two_hop:.1f} ({self.two_hop_fraction_of_max:.0%} of max)",
        ]
        lines.extend(f"  ERROR: {e}" for e in self.errors)
        lines.extend(f"  warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def validate_index(
    index: CagraIndex, sample: int = 1000, seed: int = 0
) -> ValidationReport:
    """Audit an index's structural invariants and reachability stats.

    Args:
        index: the index to audit.
        sample: node sample size for the 2-hop statistic (0 = all nodes).
        seed: sampling seed.
    """
    report = ValidationReport(ok=True)
    neighbors = index.graph.neighbors
    n, d = neighbors.shape
    report.num_nodes = n
    report.degree = d

    if index.dataset.shape[0] != n:
        report.errors.append(
            f"dataset rows ({index.dataset.shape[0]}) != graph nodes ({n})"
        )
    if not np.isfinite(index.dataset.astype(np.float64)).all():
        report.errors.append("dataset contains non-finite values")
    if neighbors.size and neighbors.max() >= n:
        report.errors.append("neighbor id out of range")

    node_ids = np.arange(n, dtype=np.uint32)[:, None]
    report.self_loops = int((neighbors == node_ids).sum())
    if report.self_loops:
        report.warnings.append(f"{report.self_loops} self-loop edges")

    sorted_rows = np.sort(neighbors, axis=1)
    report.duplicate_edges = int(
        (sorted_rows[:, 1:] == sorted_rows[:, :-1]).sum()
    )
    if report.duplicate_edges:
        report.warnings.append(
            f"{report.duplicate_edges} duplicate edges across rows"
        )

    in_degrees = index.graph.in_degrees()
    report.min_in_degree = int(in_degrees.min()) if n else 0
    if report.min_in_degree == 0:
        unreachable = int((in_degrees == 0).sum())
        report.warnings.append(
            f"{unreachable} nodes have no incoming edges (unreachable "
            "except by random initialization)"
        )

    report.strong_components = strong_connected_components(index.graph)
    if report.strong_components > max(1, n // 100):
        report.warnings.append(
            f"{report.strong_components} strong components — poor reachability"
        )
    report.avg_two_hop = average_two_hop_count(index.graph, sample=sample, seed=seed)
    report.two_hop_fraction_of_max = report.avg_two_hop / (d + d * d)

    report.ok = not report.errors
    return report
