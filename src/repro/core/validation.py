"""Index integrity validation.

``validate_index`` audits a :class:`~repro.core.index.CagraIndex` the way
an operator would before shipping it to serving: structural invariants
(shape agreement, id ranges, fixed degree, duplicates, self-loops) plus
the reachability statistics the paper optimizes (strong CC count, 2-hop
node counts).  Returns a :class:`ValidationReport`; nothing raises, so it
can run on intentionally degraded indexes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.graph import INDEX_MASK, PARENT_FLAG
from repro.core.index import CagraIndex
from repro.core.metrics import average_two_hop_count, strong_connected_components

__all__ = ["ValidationReport", "validate_index"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_index`.

    ``ok`` aggregates the structural checks; reachability statistics are
    informational (a valid index can still have poor reachability).
    """

    ok: bool
    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    num_nodes: int = 0
    degree: int = 0
    parent_flag_bits: int = 0
    unfilled_edges: int = 0
    self_loops: int = 0
    duplicate_edges: int = 0
    min_in_degree: int = 0
    strong_components: int = 0
    avg_two_hop: float = 0.0
    two_hop_fraction_of_max: float = 0.0

    def summary(self) -> str:
        """One-paragraph human-readable summary."""
        status = "OK" if self.ok else "INVALID"
        lines = [
            f"index {status}: {self.num_nodes} nodes, degree {self.degree}",
            f"  self-loops: {self.self_loops}, duplicate edges: "
            f"{self.duplicate_edges}, min in-degree: {self.min_in_degree}",
            f"  strong CC: {self.strong_components}, avg 2-hop: "
            f"{self.avg_two_hop:.1f} ({self.two_hop_fraction_of_max:.0%} of max)",
        ]
        lines.extend(f"  ERROR: {e}" for e in self.errors)
        lines.extend(f"  warning: {w}" for w in self.warnings)
        return "\n".join(lines)


def validate_index(
    index: CagraIndex,
    sample: int = 1000,
    seed: int = 0,
    expected_degree: int | None = None,
) -> ValidationReport:
    """Audit an index's structural invariants and reachability stats.

    Args:
        index: the index to audit.
        sample: node sample size for the 2-hop statistic (0 = all nodes).
        seed: sampling seed.
        expected_degree: required out-degree; defaults to the build
            config's ``graph_degree`` when the index carries one.
    """
    report = ValidationReport(ok=True)
    neighbors = index.graph.neighbors
    n, d = neighbors.shape
    report.num_nodes = n
    report.degree = d

    if expected_degree is None and index.build_config is not None:
        expected_degree = index.build_config.graph_degree
    if expected_degree is not None and d != expected_degree:
        report.errors.append(
            f"graph degree ({d}) != expected degree ({expected_degree})"
        )

    if index.dataset.shape[0] != n:
        report.errors.append(
            f"dataset rows ({index.dataset.shape[0]}) != graph nodes ({n})"
        )
    if not np.isfinite(index.dataset.astype(np.float64)).all():
        report.errors.append("dataset contains non-finite values")

    # The parented MSB is transient search state (Sec. IV-B4): a stored
    # graph must hold bare node ids only.  A stray flag bit would both
    # corrupt traversal (id >= 2^31 reads the wrong row) and make the
    # range check below fire, so report it as its own distinct finding.
    report.parent_flag_bits = int(((neighbors & PARENT_FLAG) != 0).sum())
    if report.parent_flag_bits:
        report.errors.append(
            f"{report.parent_flag_bits} stored neighbor id(s) carry the "
            f"PARENT_FLAG bit — stored graphs must hold bare node ids"
        )
    # INDEX_MASK is the search's "unfilled slot" sentinel, never a valid
    # node id; one stored as an out-edge is a dangling edge to a
    # nonexistent node (the failure mode of an unrepaired ``extend`` that
    # copied unfilled search slots into the graph).
    report.unfilled_edges = int((neighbors == INDEX_MASK).sum())
    if report.unfilled_edges:
        report.errors.append(
            f"{report.unfilled_edges} out-edge slot(s) hold the INDEX_MASK "
            f"unfilled-slot sentinel (dangling edges, e.g. from unrepaired "
            f"extend results)"
        )
    bare = neighbors & INDEX_MASK
    real = bare[neighbors != INDEX_MASK]
    if real.size and real.max() >= n:
        report.errors.append("neighbor id out of range")

    node_ids = np.arange(n, dtype=np.uint32)[:, None]
    report.self_loops = int((neighbors == node_ids).sum())
    if report.self_loops:
        report.warnings.append(f"{report.self_loops} self-loop edges")

    sorted_rows = np.sort(neighbors, axis=1)
    report.duplicate_edges = int(
        (sorted_rows[:, 1:] == sorted_rows[:, :-1]).sum()
    )
    if report.duplicate_edges:
        report.warnings.append(
            f"{report.duplicate_edges} duplicate edges across rows"
        )

    # Reachability statistics traverse the graph, so they are only safe
    # when every stored id is a bare in-range node id; skip them (instead
    # of crashing) on a corrupt graph — the errors above already tell the
    # operator why.
    ids_traversable = report.parent_flag_bits == 0 and (
        not neighbors.size or int(neighbors.max()) < n
    )
    if ids_traversable:
        in_degrees = index.graph.in_degrees()
        report.min_in_degree = int(in_degrees.min()) if n else 0
        if report.min_in_degree == 0:
            unreachable = int((in_degrees == 0).sum())
            report.warnings.append(
                f"{unreachable} nodes have no incoming edges (unreachable "
                "except by random initialization)"
            )

        report.strong_components = strong_connected_components(index.graph)
        if report.strong_components > max(1, n // 100):
            report.warnings.append(
                f"{report.strong_components} strong components — poor reachability"
            )
        report.avg_two_hop = average_two_hop_count(
            index.graph, sample=sample, seed=seed
        )
        report.two_hop_fraction_of_max = report.avg_two_hop / (d + d * d)
    else:
        report.warnings.append(
            "reachability statistics skipped: graph contains invalid ids"
        )

    report.ok = not report.errors
    return report
