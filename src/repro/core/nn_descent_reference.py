"""Literal NN-descent (Dong et al., WWW'11) — the test oracle.

:mod:`repro.core.nn_descent` restructures the algorithm for NumPy
vectorization (2-hop candidate pools merged per node).  This module keeps
the *textbook* algorithm — per-node local joins updating both endpoints of
every compared pair — exactly as Algorithm 2 of the paper describes:

1. each node samples ``rho*K`` of its new neighbors and ``rho*K`` old;
2. reverse lists are built and sampled the same way;
3. the local join compares every (new x new) and (new x old) pair and
   tries the distance on *both* sides' k-NN lists;
4. stop when fewer than ``delta*N*K`` updates happen in a round.

It is O(N·(ρK)²) *Python-loop* work per round — only usable at test
scale, which is the point: the test suite checks that the fast builder
reaches the same graph quality as this reference on small inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.distances import distance_function
from repro.core.graph import FixedDegreeGraph
from repro.core.nn_descent import KnnGraphResult

__all__ = ["build_knn_graph_reference"]


class _NeighborList:
    """One node's bounded k-NN list: (distance, id, is_new) triples."""

    __slots__ = ("k", "entries", "members")

    def __init__(self, k: int):
        self.k = k
        self.entries: list[list] = []  # [distance, id, is_new], sorted
        self.members: set[int] = set()

    def insert(self, distance: float, node: int) -> bool:
        """Try to insert; returns True when the list changed."""
        if node in self.members:
            return False
        if len(self.entries) >= self.k and distance >= self.entries[-1][0]:
            return False
        if len(self.entries) >= self.k:
            evicted = self.entries.pop()
            self.members.discard(evicted[1])
        # Insertion sort (lists are tiny).
        position = 0
        while position < len(self.entries) and self.entries[position][0] <= distance:
            position += 1
        self.entries.insert(position, [distance, node, True])
        self.members.add(node)
        return True

    def sample_split(
        self, rho_k: int, rng: np.random.Generator
    ) -> tuple[list[int], list[int]]:
        """Sample up to ``rho_k`` new ids (marking them old) and all old."""
        new_positions = [i for i, e in enumerate(self.entries) if e[2]]
        old_ids = [e[1] for e in self.entries if not e[2]]
        if len(new_positions) > rho_k:
            new_positions = list(
                rng.choice(new_positions, size=rho_k, replace=False)
            )
        sampled_new = []
        for position in new_positions:
            self.entries[position][2] = False
            sampled_new.append(self.entries[position][1])
        return sampled_new, old_ids


def build_knn_graph_reference(
    data: np.ndarray,
    k: int,
    rho: float = 0.5,
    delta: float = 0.001,
    max_iterations: int = 30,
    metric: str = "sqeuclidean",
    seed: int = 0,
) -> KnnGraphResult:
    """Textbook NN-descent; see module docstring.  Test-scale only."""
    n = int(data.shape[0])
    if n < 2:
        raise ValueError("need at least 2 vectors")
    k = min(k, n - 1)
    rng = np.random.default_rng(seed)
    dist = distance_function(metric)
    rho_k = max(1, int(round(rho * k)))

    lists = [_NeighborList(k) for _ in range(n)]
    for v in range(n):
        for u in rng.choice([x for x in range(n) if x != v], size=k, replace=False):
            lists[v].insert(dist(data[v], data[int(u)]), int(u))
    distance_computations = n * k

    iterations = 0
    for _ in range(max_iterations):
        iterations += 1
        # Sample forward new/old per node.
        new_fwd: list[list[int]] = []
        old_fwd: list[list[int]] = []
        for v in range(n):
            sampled_new, sampled_old = lists[v].sample_split(rho_k, rng)
            new_fwd.append(sampled_new)
            old_fwd.append(sampled_old)

        # Reverse lists of the sampled sets, themselves sampled to rho*K.
        new_rev: list[list[int]] = [[] for _ in range(n)]
        old_rev: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            for u in new_fwd[v]:
                new_rev[u].append(v)
            for u in old_fwd[v]:
                old_rev[u].append(v)
        for u in range(n):
            if len(new_rev[u]) > rho_k:
                new_rev[u] = list(rng.choice(new_rev[u], size=rho_k, replace=False))
            if len(old_rev[u]) > rho_k:
                old_rev[u] = list(rng.choice(old_rev[u], size=rho_k, replace=False))

        updates = 0
        for v in range(n):
            new_set = list(dict.fromkeys(new_fwd[v] + new_rev[v]))
            old_set = list(dict.fromkeys(old_fwd[v] + old_rev[v]))
            # new x new (each unordered pair once) and new x old.
            for i, u1 in enumerate(new_set):
                for u2 in new_set[i + 1:]:
                    if u1 == u2:
                        continue
                    d = dist(data[u1], data[u2])
                    distance_computations += 1
                    updates += lists[u1].insert(d, u2)
                    updates += lists[u2].insert(d, u1)
                for u2 in old_set:
                    if u1 == u2:
                        continue
                    d = dist(data[u1], data[u2])
                    distance_computations += 1
                    updates += lists[u1].insert(d, u2)
                    updates += lists[u2].insert(d, u1)
        if updates <= delta * n * k:
            break

    ids = np.empty((n, k), dtype=np.uint32)
    dists = np.empty((n, k), dtype=np.float32)
    for v in range(n):
        entries = lists[v].entries
        # Pathological underfill (tiny n): pad with the nearest entry.
        while len(entries) < k:
            entries.append(entries[-1][:])
        for j, (d, u, _) in enumerate(entries[:k]):
            ids[v, j] = u
            dists[v, j] = d
    return KnnGraphResult(
        graph=FixedDegreeGraph(ids),
        distances=dists,
        iterations=iterations,
        distance_computations=distance_computations,
    )
