"""Core CAGRA algorithms: graph construction, optimization, and search.

The public entry point is :class:`repro.core.index.CagraIndex`; the
submodules here implement its pieces:

* :mod:`repro.core.distances` — metric kernels (L2², inner product, cosine).
* :mod:`repro.core.graph` — the fixed out-degree graph container.
* :mod:`repro.core.nn_descent` — NN-descent initial k-NN graph builder.
* :mod:`repro.core.optimize` — CAGRA graph optimization (reordering,
  reverse-edge merge).
* :mod:`repro.core.search` — the CAGRA search loop's executable
  specification (single-/multi-CTA entry points, cost counters).
* :mod:`repro.core.traversal` — the array-parallel traversal engine
  behind every search entry point (masked live-query stepping, fp16
  storage, team_size-aware accounting).
* :mod:`repro.core.hashtable` — open-addressing visited-node hash tables.
* :mod:`repro.core.topm` — top-M buffer merge primitives.
* :mod:`repro.core.metrics` — recall, strong connected components,
  2-hop node counts.
* :mod:`repro.core.sharding` — multi-GPU sharding (Sec. IV-C2 / V-E).
* :mod:`repro.core.refine` — full-precision re-ranking of FP16 results.
* :mod:`repro.core.batch_search` — deprecated forwarding shim for the
  fast path, now :mod:`repro.core.traversal`.
"""

from repro.core.config import (
    GraphBuildConfig,
    SearchConfig,
    HashTableConfig,
)
from repro.core.graph import FixedDegreeGraph
from repro.core.index import CagraIndex
from repro.core.refine import refine
from repro.core.sharding import ShardQuorumError, ShardedCagraIndex
from repro.core.validation import ValidationReport, validate_index

__all__ = [
    "CagraIndex",
    "FixedDegreeGraph",
    "GraphBuildConfig",
    "SearchConfig",
    "HashTableConfig",
    "ShardQuorumError",
    "ShardedCagraIndex",
    "ValidationReport",
    "refine",
    "validate_index",
]
