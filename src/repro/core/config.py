"""Configuration dataclasses for graph construction and search.

These mirror the knobs exposed by the paper:

* :class:`GraphBuildConfig` — final degree ``d``, initial NN-descent degree
  ``d_init`` (Sec. III-B: "typically 2d or 3d"), the reordering flavour
  (rank-based is CAGRA's contribution; distance-based is the ablation
  baseline), and whether reverse edges are merged.
* :class:`SearchConfig` — internal top-M size (``itopk``), search width ``p``
  (parents expanded per iteration), iteration bounds, the CTA mapping
  (``auto``/``single``/``multi``), team size, and the hash-table policy.
* :class:`HashTableConfig` — open-addressing table sizing and the
  *forgettable* reset interval (Sec. IV-B3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.core.distances import METRICS

__all__ = ["GraphBuildConfig", "SearchConfig", "HashTableConfig", "choose_algo"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class GraphBuildConfig:
    """Parameters of CAGRA graph construction.

    Attributes:
        graph_degree: out-degree ``d`` of the final graph (fixed for all
            nodes).  Paper Table I uses 32–80 depending on the dataset.
        intermediate_degree: degree ``d_init`` of the initial NN-descent
            k-NN graph; ``0`` means ``2 * graph_degree``.
        reordering: ``"rank"`` (CAGRA default), ``"distance"`` (ablation
            baseline that computes real detour distances), or ``"none"``
            (skip reordering; prune by distance rank only).
        add_reverse_edges: merge the reversed graph (Sec. III-B2).  Disabled
            only for the Fig. 3 ablations.
        nn_descent_iterations: maximum NN-descent rounds.
        nn_descent_sample_rate: fraction (rho) of each neighbor list sampled
            per local-join round.
        nn_descent_termination_delta: stop when fewer than
            ``delta * N * d_init`` list updates happen in a round.
        metric: one of :data:`repro.core.distances.METRICS`.
        seed: RNG seed for NN-descent initialization.
    """

    graph_degree: int = 32
    intermediate_degree: int = 0
    reordering: str = "rank"
    add_reverse_edges: bool = True
    nn_descent_iterations: int = 20
    nn_descent_sample_rate: float = 0.5
    nn_descent_termination_delta: float = 0.01
    metric: str = "sqeuclidean"
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.graph_degree >= 2, "graph_degree must be >= 2")
        _require(
            self.graph_degree % 2 == 0,
            "graph_degree must be even (d/2 forward + d/2 reverse merge)",
        )
        _require(
            self.reordering in ("rank", "distance", "none"),
            f"reordering must be 'rank', 'distance' or 'none', got {self.reordering!r}",
        )
        _require(self.metric in METRICS, f"metric must be one of {METRICS}")
        _require(self.nn_descent_iterations >= 1, "need at least one NN-descent round")
        _require(
            0.0 < self.nn_descent_sample_rate <= 1.0,
            "nn_descent_sample_rate must be in (0, 1]",
        )
        if self.intermediate_degree:
            _require(
                self.intermediate_degree >= self.graph_degree,
                "intermediate_degree must be >= graph_degree",
            )

    @property
    def resolved_intermediate_degree(self) -> int:
        """``d_init``; defaults to ``2 * d`` as recommended by the paper."""
        return self.intermediate_degree or 2 * self.graph_degree


@dataclass(frozen=True)
class HashTableConfig:
    """Visited-node hash table policy (Sec. IV-B3).

    ``kind="standard"`` is a device-memory table sized for the whole search
    (``>= 2 * I_max * p * d`` entries).  ``kind="forgettable"`` is the small
    shared-memory table (paper: 2^8–2^13 entries) that is wiped every
    ``reset_interval`` iterations and re-seeded with the current top-M list.
    """

    kind: str = "forgettable"
    log2_size: int = 11
    reset_interval: int = 2

    def __post_init__(self) -> None:
        _require(
            self.kind in ("standard", "forgettable"),
            f"hash table kind must be 'standard' or 'forgettable', got {self.kind!r}",
        )
        _require(4 <= self.log2_size <= 26, "log2_size out of range [4, 26]")
        _require(self.reset_interval >= 1, "reset_interval must be >= 1")


@dataclass(frozen=True)
class SearchConfig:
    """Parameters of the CAGRA search (Sec. IV).

    Attributes:
        itopk: internal top-M list length ``M`` (>= k).
        search_width: ``p``, the number of parent nodes expanded per
            iteration (single-CTA; multi-CTA always uses ``p=1`` per CTA).
        max_iterations: hard iteration cap ``I_max``; ``0`` picks a bound
            from ``itopk`` and ``search_width``.
        min_iterations: lower bound on iterations before convergence exit.
        algo: ``"auto"`` (paper's Fig. 7 rule), ``"single_cta"`` or
            ``"multi_cta"``.
        team_size: threads per distance computation (0 = auto from dim).
        cta_per_query: CTAs per query in multi-CTA mode (0 = auto).
        hash_table: hash policy; ``None`` picks per-algo defaults
            (forgettable/shared for single-CTA, standard/device for multi).
        itopk_threshold: ``M_T`` of Fig. 7 (multi-CTA above it).
        batch_threshold: ``b_T`` of Fig. 7; 0 = "number of SMs on the GPU".
        seed: RNG seed for the random initialization step.
        precision: dataset storage precision the traversal engine searches
            at — ``"fp32"`` (the caller's array as-is) or ``"fp16"``
            (half-precision storage, fp32 distance accumulation; the
            paper's half mode, halving simulated DRAM traffic).
    """

    itopk: int = 64
    search_width: int = 1
    max_iterations: int = 0
    min_iterations: int = 0
    algo: str = "auto"
    team_size: int = 0
    cta_per_query: int = 0
    hash_table: HashTableConfig | None = None
    itopk_threshold: int = 512
    batch_threshold: int = 0
    seed: int = 0
    precision: str = "fp32"

    def __post_init__(self) -> None:
        _require(
            self.precision in ("fp32", "fp16"),
            f"precision must be 'fp32' or 'fp16', got {self.precision!r}",
        )
        _require(self.itopk >= 1, "itopk must be >= 1")
        _require(self.search_width >= 1, "search_width must be >= 1")
        _require(
            self.algo in ("auto", "single_cta", "multi_cta"),
            f"algo must be 'auto', 'single_cta' or 'multi_cta', got {self.algo!r}",
        )
        _require(
            self.team_size in (0, 2, 4, 8, 16, 32),
            "team_size must be 0 (auto) or a power of two in [2, 32]",
        )
        _require(self.max_iterations >= 0, "max_iterations must be >= 0")
        _require(self.min_iterations >= 0, "min_iterations must be >= 0")
        _require(self.cta_per_query >= 0, "cta_per_query must be >= 0")

    def resolved_max_iterations(self) -> int:
        """``I_max``: explicit value, or a heuristic bound like cuVS uses."""
        if self.max_iterations:
            return self.max_iterations
        # Enough iterations to let every itopk entry become a parent, with
        # some slack for re-ranking churn.
        return max(32, (self.itopk + self.search_width - 1) // self.search_width + 16)

    def with_overrides(self, **kwargs) -> "SearchConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def from_mapping(
        cls, mapping: "dict | None", base: "SearchConfig | None" = None, **overrides
    ) -> "SearchConfig":
        """Build a config from a loose mapping (e.g. a tuned-profile JSON).

        Unknown keys are ignored so profile schemas can grow without
        breaking older readers; ``base`` supplies the starting values
        (default-constructed otherwise) and ``overrides`` win over both.
        This is how :mod:`repro.tune` profiles become ``SearchConfig``
        defaults without the core depending on the tuner.
        """
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in dict(mapping or {}).items() if k in known}
        kwargs.update({k: v for k, v in overrides.items() if k in known})
        return replace(base, **kwargs) if base is not None else cls(**kwargs)


def choose_algo(
    config: SearchConfig, batch_size: int, num_sms: int = 108
) -> str:
    """The implementation-choice rule of Fig. 7.

    Multi-CTA is used when the batch is smaller than ``b_T`` (default: the
    SM count) *or* the internal top-M exceeds ``M_T`` (default 512);
    otherwise single-CTA.
    """
    if config.algo != "auto":
        return config.algo
    batch_threshold = config.batch_threshold or num_sms
    if batch_size < batch_threshold or config.itopk > config.itopk_threshold:
        return "multi_cta"
    return "single_cta"
