"""NN-descent construction of the initial k-NN graph (Dong et al., WWW'11).

CAGRA builds its initial degree-``d_init`` k-NN graph with NN-descent
(Sec. III-B1), then sorts every adjacency list by distance.  This module is
a vectorized NumPy implementation of the algorithm's core idea — *a
neighbor of a neighbor is likely a neighbor* — structured so that each
round does O(N·S²) candidate-distance computations as a handful of batched
array operations rather than per-pair Python work:

1. every node samples ``S`` of its current neighbors, preferring entries
   flagged *new* (not yet expanded), plus ``S`` reverse neighbors;
2. the 2-hop pool ``neighbors(sampled ∪ reverse-sampled)`` becomes the
   round's candidate set;
3. candidate distances are computed in one gathered batch and merged into
   the current lists with a vectorized sort/deduplicate;
4. the round's *update count* (changed list entries) drives the
   termination test ``updates < delta · N · K``.

The result is the exact input the CAGRA optimizer expects: a fixed-degree
graph whose rows are distance-sorted, together with the distance table
(used only by the distance-based reordering ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import GraphBuildConfig
from repro.core.distances import gathered_distances, pairwise_distances
from repro.core.graph import FixedDegreeGraph

__all__ = ["KnnGraphResult", "build_knn_graph", "brute_force_knn_graph"]


@dataclass
class KnnGraphResult:
    """Output of the initial graph build.

    Attributes:
        graph: degree-``k`` graph; every row sorted by ascending distance.
        distances: ``(N, k)`` float32 distance table aligned with
            ``graph.neighbors`` (consumed by distance-based reordering).
        iterations: NN-descent rounds actually executed.
        distance_computations: total candidate distances evaluated — the
            work counter used by the construction-time cost model.
    """

    graph: FixedDegreeGraph
    distances: np.ndarray
    iterations: int
    distance_computations: int


def _sample_columns(rng: np.random.Generator, width: int, take: int, rows: int) -> np.ndarray:
    """Per-row random column positions: ``(rows, take)`` ints in [0, width)."""
    return rng.integers(0, width, size=(rows, take))


def _merge_candidates(
    ids: np.ndarray,
    dists: np.ndarray,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    k: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Merge candidate columns into the current k-NN lists.

    Returns the new ``(ids, dists)`` arrays plus a boolean mask of entries
    whose id is genuinely new to the row (set membership, not position).
    Duplicate ids within a row keep only their best distance; the rows stay
    sorted ascending by distance.
    """
    all_ids = np.concatenate([ids, cand_ids], axis=1)
    all_dists = np.concatenate([dists, cand_dists], axis=1)

    # Deduplicate per row: sort by (id, dist), mark repeats of the same id
    # as +inf so only the best copy of each id survives the distance sort.
    order = np.lexsort((all_dists, all_ids), axis=1)
    sorted_ids = np.take_along_axis(all_ids, order, axis=1)
    sorted_dists = np.take_along_axis(all_dists, order, axis=1)
    dup = np.zeros_like(sorted_dists, dtype=bool)
    dup[:, 1:] = sorted_ids[:, 1:] == sorted_ids[:, :-1]
    sorted_dists[dup] = np.inf

    keep = np.argsort(sorted_dists, axis=1, kind="stable")[:, :k]
    new_ids = np.take_along_axis(sorted_ids, keep, axis=1)
    new_dists = np.take_along_axis(sorted_dists, keep, axis=1)

    # Set-based newness: an entry counts as an update only if its id was not
    # in the old row at all (positions churn every round and never settle).
    n = ids.shape[0]
    offsets = np.arange(n, dtype=np.int64)[:, None] * np.int64(1 << 32)
    old_sorted = np.sort(ids + offsets, axis=1)
    keys = new_ids + offsets
    pos = np.searchsorted(old_sorted.ravel(), keys.ravel())
    pos = np.minimum(pos, old_sorted.size - 1)
    entered = (old_sorted.ravel()[pos] != keys.ravel()).reshape(n, k)
    return new_ids, new_dists, entered


def _reverse_samples(
    ids: np.ndarray, take: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample up to ``take`` reverse neighbors per node.

    Built by scattering all (neighbor → node) pairs, shuffling, and keeping
    the first ``take`` arrivals per destination; missing slots repeat the
    node itself (harmless: self-candidates dedupe away).
    """
    n, k = ids.shape
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = ids.ravel().astype(np.int64)
    perm = rng.permutation(len(dst))
    src, dst = src[perm], dst[perm]
    out = np.tile(np.arange(n, dtype=np.int64)[:, None], (1, take))
    fill = np.zeros(n, dtype=np.int64)
    for s, d in zip(src, dst):
        slot = fill[d]
        if slot < take:
            out[d, slot] = s
            fill[d] = slot + 1
    return out


def _reverse_samples_fast(
    ids: np.ndarray, take: int, rng: np.random.Generator
) -> np.ndarray:
    """Vectorized variant of :func:`_reverse_samples`.

    Sorting the shuffled (dst, src) pairs by destination lets us slice the
    first ``take`` sources per destination without a Python loop.
    """
    n, k = ids.shape
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = ids.ravel().astype(np.int64)
    perm = rng.permutation(len(dst))
    src, dst = src[perm], dst[perm]
    order = np.argsort(dst, kind="stable")
    src, dst = src[order], dst[order]
    starts = np.searchsorted(dst, np.arange(n))
    counts = np.minimum(np.searchsorted(dst, np.arange(n), side="right") - starts, take)
    out = np.tile(np.arange(n, dtype=np.int64)[:, None], (1, take))
    cols = np.arange(take)[None, :]
    mask = cols < counts[:, None]
    flat_pos = (starts[:, None] + cols)[mask]
    out[mask] = src[flat_pos]
    return out


def build_knn_graph(
    data: np.ndarray,
    k: int,
    config: GraphBuildConfig | None = None,
) -> KnnGraphResult:
    """Build a degree-``k`` approximate k-NN graph with NN-descent.

    Args:
        data: ``(N, dim)`` dataset.
        k: neighbors per node (``d_init`` in CAGRA terms); clamped to
            ``N - 1`` for tiny datasets.
        config: build options; only the ``nn_descent_*``, ``metric`` and
            ``seed`` fields are consulted.
    """
    config = config or GraphBuildConfig()
    n = int(data.shape[0])
    if n < 2:
        raise ValueError("need at least 2 vectors to build a k-NN graph")
    k = min(k, n - 1)
    rng = np.random.default_rng(config.seed)
    metric = config.metric

    # --- random initialization -------------------------------------------
    ids = rng.integers(0, n - 1, size=(n, k), dtype=np.int64)
    # Avoid self ids: shift anything >= row index up by one, mapping the
    # uniform draw over [0, n-2] onto [0, n-1] \ {row}.
    rows = np.arange(n, dtype=np.int64)[:, None]
    ids[ids >= rows] += 1
    dists = gathered_distances(data, data, ids, metric=metric).astype(np.float32)
    order = np.argsort(dists, axis=1, kind="stable")
    ids = np.take_along_axis(ids, order, axis=1)
    dists = np.take_along_axis(dists, order, axis=1)
    is_new = np.ones((n, k), dtype=bool)
    distance_computations = n * k

    # Sample size per round: rho * k, capped — the 2-hop pool grows
    # quadratically in the sample, and beyond ~10 sources per round extra
    # candidates are mostly duplicates (pure overhead in a NumPy build).
    sample = max(1, min(k, 10, int(round(config.nn_descent_sample_rate * k))))
    threshold = config.nn_descent_termination_delta * n * k
    iterations_run = 0

    for _ in range(config.nn_descent_iterations):
        iterations_run += 1

        # --- sample forward neighbors, preferring new entries -------------
        # Sort columns so new entries come first, then take a random slice
        # biased toward the front.
        newness_order = np.argsort(~is_new, axis=1, kind="stable")
        pool = np.take_along_axis(ids, newness_order, axis=1)
        fwd_cols = _sample_columns(rng, min(k, 2 * sample), sample, n)
        fwd = np.take_along_axis(pool, fwd_cols, axis=1)
        # Mark the sampled-new entries as expanded (old) for later rounds.
        sampled_mask = np.zeros((n, k), dtype=bool)
        np.put_along_axis(
            sampled_mask, np.take_along_axis(newness_order, fwd_cols, axis=1), True, axis=1
        )
        is_new &= ~sampled_mask

        rev = _reverse_samples_fast(ids, sample, rng)

        # --- 2-hop expansion ----------------------------------------------
        sources = np.concatenate([fwd, rev], axis=1)  # (n, 2*sample)
        # candidates[v] = sampled neighbors of each sampled source of v.
        cand = ids[sources.reshape(-1)]  # (n*2s, k)
        hop_cols = _sample_columns(rng, k, sample, cand.shape[0])
        cand = np.take_along_axis(cand, hop_cols, axis=1)  # (n*2s, sample)
        cand = cand.reshape(n, -1)  # (n, 2*sample*sample)
        cand = np.concatenate([cand, sources], axis=1)

        # Drop self-candidates by replacing them with an existing neighbor
        # (dedupe removes the copy).
        self_mask = cand == rows
        if self_mask.any():
            cand[self_mask] = np.broadcast_to(ids[:, :1], cand.shape)[self_mask]

        cand_dists = gathered_distances(data, data, cand, metric=metric).astype(
            np.float32
        )
        distance_computations += cand.size

        new_ids, new_dists, entered = _merge_candidates(ids, dists, cand, cand_dists, k)
        # Freshly inserted ids must be expanded next round; survivors have
        # already had their chance.
        is_new = entered
        ids, dists = new_ids, new_dists

        if entered.sum() <= threshold:
            break

    graph = FixedDegreeGraph(ids.astype(np.uint32))
    return KnnGraphResult(
        graph=graph,
        distances=dists,
        iterations=iterations_run,
        distance_computations=distance_computations,
    )


def brute_force_knn_graph(
    data: np.ndarray, k: int, metric: str = "sqeuclidean", block: int = 512
) -> KnnGraphResult:
    """Exact k-NN graph by blocked brute force (reference for tests).

    Quadratic in N; intended for small inputs where NN-descent quality is
    being validated.
    """
    n = int(data.shape[0])
    k = min(k, n - 1)
    ids = np.empty((n, k), dtype=np.uint32)
    dists = np.empty((n, k), dtype=np.float32)
    for start in range(0, n, block):
        stop = min(start + block, n)
        d = pairwise_distances(data[start:stop], data, metric=metric)
        d[np.arange(start, stop) - start, np.arange(start, stop)] = np.inf
        part = np.argpartition(d, k - 1, axis=1)[:, :k]
        part_d = np.take_along_axis(d, part, axis=1)
        order = np.argsort(part_d, axis=1, kind="stable")
        ids[start:stop] = np.take_along_axis(part, order, axis=1).astype(np.uint32)
        dists[start:stop] = np.take_along_axis(part_d, order, axis=1)
    return KnnGraphResult(
        graph=FixedDegreeGraph(ids),
        distances=dists,
        iterations=0,
        distance_computations=n * n,
    )
