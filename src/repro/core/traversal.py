"""The array-parallel traversal engine behind every CAGRA search entry point.

The CAGRA hot loop used to live twice in this repo: the per-query reference
in :mod:`repro.core.search` (``_greedy_core`` plus its single-/multi-CTA
wrappers) and the vectorized lockstep chunk in
:mod:`repro.core.batch_search`.  :class:`TraversalEngine` unifies them into
one masked stepping loop where **all live queries advance one hop per
vectorized step**: parent selection, neighbor gather, first-occurrence
dedup, distance evaluation, visited probing and the top-M merge all run on
a ``(live_queries, ...)`` array slab, with finished queries masked out (and
periodically compacted away) instead of looping per query.

Two visited backends select the fidelity/speed trade:

* ``mode="reference"`` — a row-parallel emulation of the real
  open-addressing hash tables (:class:`_HashSlab`), bit-exact against the
  sequential reference: per-slot probe counts, full-table saturation,
  forgettable resets with top-M re-registration, ``min_iterations``
  re-seeding, and multi-CTA worker passes sharing one table and one RNG
  stream per query.  ``search_batch``'s counters, ids and distances are
  pinned bitwise against the pre-engine fixture.
* ``mode="fast"`` — the exact dense boolean visited table with flat hash
  accounting, byte-for-byte the semantics of the old
  ``search_batch_fast`` (standard-table behaviour, ``min_iterations``
  ignored), plus dead-query compaction so throughput tracks *live* queries
  rather than batch size.

The engine also owns the fp16 dataset path (``precision="fp16"`` stores the
vectors half-precision; distances still accumulate in fp32, matching the
CUDA kernels' ``half2`` loads) and threads ``team_size``/``dtype_bytes``
into ``CostReport.extras`` so :meth:`repro.gpusim.GpuCostModel.search_time`
prices distance work per point.

Functions marked :func:`hot_path` form the hot loop; lint rule RL007
forbids per-query Python ``for`` loops inside them (loops over lanes,
workers or probe steps are fine — their trip counts don't grow with the
batch).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import HashTableConfig, SearchConfig, choose_algo
from repro.core.distances import as_storage_dtype, gathered_distances
from repro.core.graph import INDEX_MASK, PARENT_FLAG, FixedDegreeGraph
from repro.core.hashtable import standard_table_log2_size
from repro.core.rng_init import make_streams, random_init_block
from repro.core.search import (
    CostReport,
    SearchResult,
    _collect_hash_counters,
    _default_hash_config,
    _greedy_core,
    _make_hash_table,
    _resolve_cta_per_query,
)
from repro.core.topm import bitonic_comparator_count, merge_topm, sort_strategy

__all__ = [
    "TraversalEngine",
    "hot_path",
    "search_batch_fast",
]

#: Supported dataset storage precisions.
PRECISIONS = ("fp32", "fp16")

#: Empty-slot sentinel and Knuth multiplicative constant — identical to
#: :mod:`repro.core.hashtable` so slab probes land in the same slots.
_EMPTY = np.uint32(0xFFFFFFFF)
_HASH_MULT = 0x9E3779B9
_KEY_MASK = 0xFFFFFFFF

#: Budget for per-chunk traversal state (bytes); chunks are sized so the
#: whole per-row slab — visited/hash slots, top-M buffer, candidate lanes
#: and the gather scratch at the dataset's storage width — stays below it.
_VISITED_BUDGET_BYTES = 256 * 1024 * 1024

#: Compact the live slab once at least this fraction of its rows is dead.
_COMPACT_FRACTION = 4  # 1/4

#: Below this many queries, reference mode runs the sequential spec
#: (:func:`repro.core.search._greedy_core`) per query instead of the hash
#: slab: the slab's cost is nearly flat in batch size (whole-batch numpy
#: calls), so under ~10 rows the per-call overhead dominates and the
#: scalar loop is faster.  Outputs and counters are bitwise-identical
#: either way (the parity tests pin both against the same fixture) — this
#: is purely a latency dispatch, mirroring how CAGRA itself picks
#: single- vs multi-CTA by batch size.
_SCALAR_REFERENCE_ROWS = 8


def hot_path(fn):
    """Mark a function as part of the traversal hot loop.

    RL007 rejects per-query Python ``for`` loops inside marked functions:
    everything that scales with the batch must be a whole-array operation.
    """
    fn.__hot_path__ = True
    return fn


# ----------------------------------------------------------------------
# helpers shared by both backends (moved here from batch_search)
# ----------------------------------------------------------------------
def _first_occurrence_rows(ids: np.ndarray) -> np.ndarray:
    """Mask of the first occurrence of each value within its row.

    The reference path feeds candidates one by one through the hash
    table, so when a node id appears twice in the same gather only the
    first occurrence reports "new" (one distance computation, one hash
    insertion).  The lockstep path must dedupe the same way *before*
    consulting the visited table, or intra-gather duplicates are
    double-counted.
    """
    order = np.argsort(ids, axis=1, kind="stable")
    sorted_ids = np.take_along_axis(ids, order, axis=1)
    first_sorted = np.ones(ids.shape, dtype=bool)
    first_sorted[:, 1:] = sorted_ids[:, 1:] != sorted_ids[:, :-1]
    first = np.empty(ids.shape, dtype=bool)
    np.put_along_axis(first, order, first_sorted, axis=1)
    return first


def _charge_iteration_sort(
    report: CostReport, lengths: np.ndarray, itopk: int
) -> None:
    """Meter step ①'s sort+merge for the live lockstep queries.

    ``lengths`` holds each live query's *current* candidate-list length:
    the reference path charges with the actual gather size, which drops
    below ``search_width * degree`` when a query has fewer unparented
    top-M entries than ``search_width`` — so must we.
    """
    for length, count in zip(*np.unique(lengths, return_counts=True)):
        length, count = int(length), int(count)
        if length == 0:
            continue
        if sort_strategy(length) == "warp_bitonic":
            report.sort_comparator_ops += count * bitonic_comparator_count(length)
        else:
            report.radix_sorted_elements += count * length
        merged = itopk + length
        report.sort_comparator_ops += count * (
            bitonic_comparator_count(merged) // max(1, merged.bit_length()) * 2
        )


def _merge_rows(
    topm_ids: np.ndarray,
    topm_dists: np.ndarray,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized per-row merge for the **fast** backend: dedupe bare ids
    (top-M copy wins), keep the best ``m`` by distance.

    Every ``+inf`` survivor is renormalized to a dummy entry — the dense
    backend never expands infinite-distance nodes (its visited table is
    exact, so an inf entry can only be a dup or an artifact).
    """
    ids = np.concatenate([topm_ids, cand_ids], axis=1)
    dists = np.concatenate([topm_dists, cand_dists], axis=1)
    bare = (ids & INDEX_MASK).astype(np.int64)

    # Order by (bare id, original position): the first occurrence of each
    # bare id is the top-M copy when both exist.
    position = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
    order = np.lexsort((position, bare), axis=1)
    sorted_ids = np.take_along_axis(ids, order, axis=1)
    sorted_bare = np.take_along_axis(bare, order, axis=1)
    sorted_dists = np.take_along_axis(dists, order, axis=1)
    dup = np.zeros_like(sorted_dists, dtype=bool)
    dup[:, 1:] = sorted_bare[:, 1:] == sorted_bare[:, :-1]
    sorted_dists = np.where(dup, np.inf, sorted_dists)
    # Dummy entries (INDEX_MASK) deduped too; re-pad below via inf sort.

    keep = np.argsort(sorted_dists, axis=1, kind="stable")[:, :m]
    out_ids = np.take_along_axis(sorted_ids, keep, axis=1)
    out_dists = np.take_along_axis(sorted_dists, keep, axis=1)
    # Re-normalize removed dummies: positions with inf distance become
    # dummies again (their stale ids must not be treated as parents).
    out_ids = np.where(np.isinf(out_dists), INDEX_MASK, out_ids)
    return out_ids.astype(np.uint32), out_dists


def _merge_rows_reference(
    topm_ids: np.ndarray,
    topm_dists: np.ndarray,
    cand_ids: np.ndarray,
    cand_dists: np.ndarray,
    m: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Row-parallel :func:`repro.core.topm.merge_topm` for the reference
    backend.

    Unlike :func:`_merge_rows` this keeps the scalar merge's exact
    semantics: ties break by concatenation position (not bare id), and a
    *real* id with an infinite distance survives with its id — the
    reference search does expand such nodes, so erasing them would fork
    the trajectory.  Only duplicate occurrences (a bare id's non-first
    copy) are dropped, becoming dummy entries when they land in the
    output.
    """
    ids = np.concatenate([topm_ids, cand_ids], axis=1).astype(np.uint32)
    dists = np.concatenate([topm_dists, cand_dists], axis=1).astype(np.float64)
    if ids.shape[1] < m:
        pad = m - ids.shape[1]
        ids = np.concatenate(
            [ids, np.full((ids.shape[0], pad), INDEX_MASK, dtype=np.uint32)], axis=1
        )
        dists = np.concatenate([dists, np.full((ids.shape[0], pad), np.inf)], axis=1)
    bare = (ids & INDEX_MASK).astype(np.int64)
    dup = ~_first_occurrence_rows(bare)
    key = np.where(dup, np.inf, dists)
    position = np.broadcast_to(np.arange(ids.shape[1]), ids.shape)
    # Primary: distance (dups pushed to +inf).  Secondary: non-dups first.
    # Tertiary: original position — the scalar merge's stable tie-break.
    order = np.lexsort((position, dup, key), axis=1)[:, :m]
    out_ids = np.take_along_axis(ids, order, axis=1)
    out_dists = np.take_along_axis(key, order, axis=1)
    out_dup = np.take_along_axis(dup, order, axis=1)
    out_ids = np.where(out_dup, INDEX_MASK, out_ids)
    return out_ids.astype(np.uint32), out_dists


# ----------------------------------------------------------------------
# row-parallel open-addressing hash slab (reference backend)
# ----------------------------------------------------------------------
class _HashSlab:
    """Row-parallel emulation of per-query open-addressing hash tables.

    Row ``i`` of ``slots`` is query ``i``'s table.  Inserts advance every
    row's probe sequence in lockstep, so the verdicts *and* the counters
    (one lookup per started sequence, one probe per inspected slot, silent
    "seen" after ``size`` probes of a full table) match feeding the same
    keys one at a time through
    :class:`repro.core.hashtable.StandardHashTable`.
    """

    def __init__(self, log2_size: int, rows: int):
        self.log2_size = log2_size
        self.size = 1 << log2_size
        self._mask = self.size - 1
        self.slots = np.full((rows, self.size), _EMPTY, dtype=np.uint32)
        self.lookups = 0
        self.probes = 0
        self.insertions = 0
        self.resets = 0

    @hot_path
    def insert_lane(self, keys: np.ndarray, active: np.ndarray) -> np.ndarray:
        """One ``StandardHashTable.insert`` per active row, in lockstep.

        Returns the per-row "was new" mask (False on inactive rows).  The
        probe loop below runs once per *probe step*, not per query: all
        still-unresolved rows inspect their next slot together.
        """
        rows = keys.shape[0]
        fresh = np.zeros(rows, dtype=bool)
        if not active.any():
            return fresh
        keys = keys.astype(np.uint32, copy=False)
        self.lookups += int(active.sum())
        product = (keys.astype(np.uint64) * np.uint64(_HASH_MULT)) & np.uint64(
            _KEY_MASK
        )
        slot = (product >> np.uint64(32 - self.log2_size)).astype(np.int64)
        unresolved = active.copy()
        row_idx = np.arange(rows, dtype=np.int64)
        for _ in range(self.size):  # probe steps, capped at table size
            if not unresolved.any():
                break
            self.probes += int(unresolved.sum())
            r = row_idx[unresolved]
            s = slot[r]
            v = self.slots[r, s]
            empty = v == _EMPTY
            found = v == keys[r]
            if empty.any():
                re = r[empty]
                self.slots[re, s[empty]] = keys[re]
                self.insertions += int(empty.sum())
                fresh[re] = True
            resolved = empty | found
            unresolved[r[resolved]] = False
            stuck = r[~resolved]
            slot[stuck] = (s[~resolved] + 1) & self._mask
        return fresh

    @hot_path
    def insert_unique(self, keys: np.ndarray, lane_active: np.ndarray) -> np.ndarray:
        """Sequential-lane batch insert: ``(rows, W)`` keys, fresh mask out.

        Lanes run in key order per row (the warp-serialized order the
        reference uses), each lane vectorized across all rows.
        """
        fresh = np.zeros(keys.shape, dtype=bool)
        for lane in range(keys.shape[1]):  # lane loop (width), not per-query
            fresh[:, lane] = self.insert_lane(keys[:, lane], lane_active[:, lane])
        return fresh

    def reset_rows(self, rows_mask: np.ndarray) -> None:
        """Wipe the masked rows' tables (forgettable reset)."""
        self.slots[rows_mask] = _EMPTY
        self.resets += int(rows_mask.sum())

    @hot_path
    def register_topm(self, topm_ids: np.ndarray, rows_mask: np.ndarray) -> None:
        """Re-register the masked rows' top-M bare ids after a reset.

        Dummy (``INDEX_MASK``) entries are skipped, like
        ``ForgettableHashTable.maybe_reset`` does.
        """
        bare = (topm_ids & INDEX_MASK).astype(np.uint32)
        for lane in range(bare.shape[1]):  # top-M lanes, not per-query
            active = rows_mask & (bare[:, lane] != INDEX_MASK)
            self.insert_lane(bare[:, lane], active)

    def select(self, keep: np.ndarray) -> None:
        """Drop dead rows' tables (dead-query compaction)."""
        self.slots = self.slots[keep]

    def collect(self, report: CostReport) -> None:
        report.hash_lookups += self.lookups
        report.hash_probes += self.probes
        report.hash_insertions += self.insertions
        report.hash_resets += self.resets


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
class TraversalEngine:
    """One array-parallel stepping loop for all CAGRA search mappings.

    Owns the (possibly fp16-quantized) dataset and the graph; ``search``
    dispatches between the dense ``fast`` backend and the hash-emulating
    ``reference`` backend (which itself maps to single- or multi-CTA per
    the Fig. 7 rule).
    """

    def __init__(
        self,
        data: np.ndarray,
        graph: FixedDegreeGraph,
        metric: str = "sqeuclidean",
        precision: str = "fp32",
    ):
        if precision not in PRECISIONS:
            raise ValueError(f"precision must be one of {PRECISIONS}, got {precision!r}")
        self.graph = graph
        self.metric = metric
        self.precision = precision
        # fp32 keeps the caller's array untouched (bitwise parity with the
        # pre-engine paths, including float64 datasets); fp16 quantizes
        # storage while distances still accumulate in fp32.
        self.data = (
            as_storage_dtype(data, "float16")
            if precision == "fp16"
            else np.asarray(data)
        )

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        config: SearchConfig | None = None,
        mode: str = "auto",
        num_sms: int = 108,
        filter_mask: np.ndarray | None = None,
    ) -> SearchResult:
        """Batched k-ANN search.

        ``mode="reference"`` runs the hash-faithful backend (bitwise the
        old ``search_batch``); ``mode="fast"`` runs the dense lockstep
        backend (bitwise the old ``search_batch_fast``); ``mode="auto"``
        currently selects ``fast``.
        """
        config = config or SearchConfig()
        queries = np.atleast_2d(np.asarray(queries))
        if mode == "auto":
            mode = "fast"
        if mode == "fast":
            return self._search_fast(queries, k, config, filter_mask)
        if mode != "reference":
            raise ValueError(
                f"mode must be 'auto', 'reference' or 'fast', got {mode!r}"
            )
        return self._search_reference(queries, k, config, num_sms, filter_mask)

    def search_single(
        self,
        query: np.ndarray,
        k: int,
        config: SearchConfig,
        algo: str,
        rng: np.random.Generator,
        filter_mask: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, CostReport]:
        """One query with an explicit algo and a caller-owned RNG stream.

        Backs the deprecated ``search_single_query``: the caller's
        generator is consumed exactly as the sequential reference would —
        the engine wraps it in a one-row stream set.
        """
        query = np.asarray(query)
        filter_mask = self._checked_filter(filter_mask)
        if algo == "single_cta":
            return self._scalar_single_cta(query, k, config, rng, filter_mask)
        return self._scalar_multi_cta(query, k, config, rng, filter_mask)

    # ------------------------------------------------------------------
    # reference backend (hash-faithful)
    # ------------------------------------------------------------------
    def _search_reference(
        self,
        queries: np.ndarray,
        k: int,
        config: SearchConfig,
        num_sms: int,
        filter_mask: np.ndarray | None,
    ) -> SearchResult:
        if k < 1:
            raise ValueError("k must be >= 1")
        if k > max(config.itopk, 1):
            raise ValueError(f"k={k} exceeds itopk={config.itopk}")
        filter_mask = self._checked_filter(filter_mask)
        batch = queries.shape[0]
        algo = choose_algo(config, batch, num_sms=num_sms)

        total = CostReport(algo=algo, batch_size=batch, kernel_launches=1)
        self._stamp_extras(total, config)
        indices = np.empty((batch, k), dtype=np.uint32)
        distances = np.empty((batch, k), dtype=np.float64)
        if batch < _SCALAR_REFERENCE_ROWS:
            # Latency dispatch: tiny batches can't amortize the slab's
            # whole-batch numpy calls, so run the sequential spec instead
            # (bitwise-identical outputs and counters).
            scalar = (
                self._scalar_single_cta
                if algo == "single_cta"
                else self._scalar_multi_cta
            )
            hash_in_shared = None
            for i in range(batch):
                rng = np.random.default_rng([config.seed, i])
                ids, dists, report = scalar(queries[i], k, config, rng, filter_mask)
                indices[i] = ids
                distances[i] = dists
                total.merge_from(report)
                hash_in_shared = report.hash_in_shared
                total.hash_log2_size = report.hash_log2_size
            if hash_in_shared is not None:
                total.hash_in_shared = hash_in_shared
            return SearchResult(indices=indices, distances=distances, report=total)
        run = (
            self._reference_single_cta
            if algo == "single_cta"
            else self._reference_multi_cta
        )
        chunk = self._chunk_rows_reference(config, algo)
        for start in range(0, batch, chunk):  # memory-bounded chunks
            sub = queries[start : start + chunk]
            ids, dists = run(sub, k, config, total, filter_mask, seed_offset=start)
            indices[start : start + sub.shape[0]] = ids
            distances[start : start + sub.shape[0]] = dists
        return SearchResult(indices=indices, distances=distances, report=total)

    def _reference_single_cta(
        self,
        queries: np.ndarray,
        k: int,
        config: SearchConfig,
        report: CostReport,
        filter_mask: np.ndarray | None,
        seed_offset: int = 0,
        streams=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = queries.shape[0]
        itopk = max(config.itopk, k)
        max_iter = config.resolved_max_iterations()
        hash_config = _default_hash_config("single_cta", config)
        forgettable = hash_config.kind == "forgettable"
        if forgettable:
            log2 = hash_config.log2_size
            interval = hash_config.reset_interval
        else:
            log2 = max(
                hash_config.log2_size,
                standard_table_log2_size(
                    max_iter, config.search_width, self.graph.degree
                ),
            )
            interval = 0
        slab = _HashSlab(log2, rows)
        if streams is None:
            streams = make_streams(
                config.seed, seed_offset, rows, self.graph.num_nodes
            )
        topm_ids, topm_dists = self._hash_pass(
            queries,
            itopk,
            config.search_width,
            max_iter,
            config.min_iterations,
            slab,
            streams,
            interval,
            filter_mask,
            report,
        )
        report.cta_count += rows
        slab.collect(report)
        report.hash_in_shared = forgettable
        report.hash_log2_size = log2
        return (topm_ids[:, :k] & INDEX_MASK).astype(np.uint32), topm_dists[:, :k]

    def _reference_multi_cta(
        self,
        queries: np.ndarray,
        k: int,
        config: SearchConfig,
        report: CostReport,
        filter_mask: np.ndarray | None,
        seed_offset: int = 0,
        streams=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        rows = queries.shape[0]
        num_cta = _resolve_cta_per_query(config)
        worker_itopk = 32  # per-CTA internal list (Sec. IV-C2: p = 1)
        max_iter = config.resolved_max_iterations()
        hash_config = config.hash_table or HashTableConfig(
            kind="standard", log2_size=13
        )
        if hash_config.kind != "standard":
            raise ValueError(
                "multi-CTA requires the standard (device-memory) hash table"
            )
        log2 = max(
            hash_config.log2_size,
            standard_table_log2_size(max_iter, num_cta, self.graph.degree),
        )
        slab = _HashSlab(log2, rows)
        if streams is None:
            streams = make_streams(
                config.seed, seed_offset, rows, self.graph.num_nodes
            )
        worker_ids: list[np.ndarray] = []
        worker_dists: list[np.ndarray] = []
        for _ in range(num_cta):  # sequential worker CTAs, not per-query
            ids, dists = self._hash_pass(
                queries,
                worker_itopk,
                1,
                max_iter,
                config.min_iterations,
                slab,
                streams,
                0,
                filter_mask,
                report,
            )
            worker_ids.append(ids)
            worker_dists.append(dists)
        report.cta_count += rows * num_cta
        slab.collect(report)
        report.hash_in_shared = False
        report.hash_log2_size = log2
        merged_ids, merged_dists = _merge_rows_reference(
            np.concatenate(worker_ids, axis=1),
            np.concatenate(worker_dists, axis=1),
            np.empty((rows, 0), dtype=np.uint32),
            np.empty((rows, 0)),
            max(config.itopk, k),
        )
        return (merged_ids[:, :k] & INDEX_MASK).astype(np.uint32), merged_dists[:, :k]

    # -- sequential small-batch fallback (the executable spec, per query) --
    def _scalar_single_cta(
        self,
        query: np.ndarray,
        k: int,
        config: SearchConfig,
        rng: np.random.Generator,
        filter_mask: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, CostReport]:
        itopk = max(config.itopk, k)
        max_iter = config.resolved_max_iterations()
        hash_config = _default_hash_config("single_cta", config)
        table = _make_hash_table(
            hash_config, max_iter, config.search_width, self.graph.degree
        )
        report = CostReport(
            algo="single_cta",
            cta_count=1,
            hash_in_shared=hash_config.kind == "forgettable",
            hash_log2_size=table.log2_size,
        )
        topm_ids, topm_dists = _greedy_core(
            self.data,
            self.graph,
            query,
            itopk,
            config.search_width,
            max_iter,
            config.min_iterations,
            table,
            rng,
            self.metric,
            report,
            filter_mask=filter_mask,
        )
        _collect_hash_counters(report, table)
        ids = (topm_ids[:k] & INDEX_MASK).astype(np.uint32)
        return ids, topm_dists[:k].copy(), report

    def _scalar_multi_cta(
        self,
        query: np.ndarray,
        k: int,
        config: SearchConfig,
        rng: np.random.Generator,
        filter_mask: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray, CostReport]:
        num_cta = _resolve_cta_per_query(config)
        worker_itopk = 32  # per-CTA internal list (Sec. IV-C2: p = 1)
        max_iter = config.resolved_max_iterations()
        hash_config = config.hash_table or HashTableConfig(
            kind="standard", log2_size=13
        )
        if hash_config.kind != "standard":
            raise ValueError(
                "multi-CTA requires the standard (device-memory) hash table"
            )
        table = _make_hash_table(hash_config, max_iter, num_cta, self.graph.degree)
        report = CostReport(
            algo="multi_cta",
            cta_count=num_cta,
            hash_in_shared=False,
            hash_log2_size=table.log2_size,
        )
        all_ids: list[np.ndarray] = []
        all_dists: list[np.ndarray] = []
        for _ in range(num_cta):  # sequential worker CTAs
            topm_ids, topm_dists = _greedy_core(
                self.data,
                self.graph,
                query,
                worker_itopk,
                1,
                max_iter,
                config.min_iterations,
                table,
                rng,
                self.metric,
                report,
                filter_mask=filter_mask,
            )
            all_ids.append(topm_ids)
            all_dists.append(topm_dists)
        _collect_hash_counters(report, table)
        merged_ids, merged_dists = merge_topm(
            np.concatenate(all_ids),
            np.concatenate(all_dists),
            np.empty(0, dtype=np.uint32),
            np.empty(0),
            max(config.itopk, k),
        )
        ids = (merged_ids[:k] & INDEX_MASK).astype(np.uint32)
        return ids, merged_dists[:k].copy(), report

    @hot_path
    def _hash_pass(
        self,
        queries: np.ndarray,
        itopk: int,
        p: int,
        max_iter: int,
        min_iter: int,
        slab: _HashSlab,
        streams,
        reset_interval: int,
        filter_mask: np.ndarray | None,
        report: CostReport,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One greedy pass for all rows, hash-faithful (see module doc).

        Used once per batch in single-CTA mode and once per worker CTA in
        multi-CTA mode (the slab and streams persist across workers, so a
        later worker sees everything earlier workers visited and continues
        their RNG streams — the paper's shared device-memory table).
        """
        n = self.graph.num_nodes
        degree = self.graph.degree
        width = p * degree
        rows = queries.shape[0]
        rown = np.arange(rows)
        track_ever = reset_interval > 0
        # Recomputed distances require the table to forget; with a standard
        # table "fresh" implies "never computed", so the ever-computed slab
        # only exists in forgettable mode.
        ever = np.zeros((rows, n), dtype=bool) if track_ever else None
        since_reset = np.zeros(rows, dtype=np.int64) if track_ever else None

        # ⓪ random initialization.
        seed_ids = streams.draw(n, width)
        report.random_inits += rows * width
        lane_usable = np.ones((rows, width), dtype=bool)
        fresh = slab.insert_unique(seed_ids, lane_usable)
        gather_int = seed_ids.astype(np.int64)
        gd = gathered_distances(self.data, queries, gather_int, self.metric)
        merge_dists = np.where(fresh, gd, np.inf)
        if filter_mask is not None:
            merge_dists = np.where(filter_mask[gather_int], merge_dists, np.inf)
        report.distance_computations += int(fresh.sum())
        report.skipped_distance_computations += int((~fresh).sum())
        if track_ever:
            rows2d = np.broadcast_to(rown[:, None], gather_int.shape)
            ever[rows2d[fresh], gather_int[fresh]] = True
        merge_ids = seed_ids

        topm_ids = np.full((rows, itopk), INDEX_MASK, dtype=np.uint32)
        topm_dists = np.full((rows, itopk), np.inf)
        live = np.ones(rows, dtype=bool)
        cand_width = np.full(rows, width, dtype=np.int64)

        iteration = 0
        while iteration < max_iter and live.any():
            iteration += 1
            report.iterations += int(live.sum())
            _charge_iteration_sort(report, cand_width[live], itopk)

            # ① merge candidates into the top-M buffer.  Dead rows carry
            # all-dummy candidates, so the merge is a no-op for them.
            topm_ids, topm_dists = _merge_rows_reference(
                topm_ids, topm_dists, merge_ids, merge_dists, itopk
            )

            # ② pick the best p unparented entries per live row.
            selectable = ((topm_ids & PARENT_FLAG) == 0) & (topm_ids != INDEX_MASK)
            selectable &= live[:, None]
            pick_order = np.argsort(~selectable, axis=1, kind="stable")[:, :p]
            picked_mask = np.take_along_axis(selectable, pick_order, axis=1)
            has_any = picked_mask.any(axis=1)
            converged = live & ~has_any
            # Converged before min_iterations: re-seed with fresh random
            # nodes (the kernel's slack iterations); at/after: retire.
            reseed = (
                converged
                if iteration < min_iter
                else np.zeros(rows, dtype=bool)
            )
            live = live & (has_any | reseed)
            work = live & has_any
            if not live.any():
                break

            parent_entries = np.take_along_axis(topm_ids, pick_order, axis=1)
            usable = picked_mask & work[:, None]
            flagged = np.where(usable, parent_entries | PARENT_FLAG, parent_entries)
            np.put_along_axis(topm_ids, pick_order, flagged, axis=1)
            parent_nodes = np.where(
                usable, (parent_entries & INDEX_MASK).astype(np.int64), 0
            )

            # ② gather neighbors for expanding rows.
            gathered = self.graph.neighbors[parent_nodes].reshape(rows, -1).astype(
                np.int64
            )
            lane_usable = np.repeat(usable, degree, axis=1)
            report.candidate_gathers += int(usable.sum()) * degree
            cand_width = np.where(work, usable.sum(axis=1) * degree, cand_width)
            if reseed.any():
                draws = streams.draw(n, width, mask=reseed)
                gathered = np.where(reseed[:, None], draws.astype(np.int64), gathered)
                lane_usable = lane_usable | reseed[:, None]
                cand_width = np.where(reseed, width, cand_width)
                # NB: the reference meters random_inits at ⓪ only — reseed
                # draws ride the same stream but aren't counted.

            # ③ first-time-only distance computation via the hash slab.
            cand_u32 = gathered.astype(np.uint32)
            fresh = slab.insert_unique(cand_u32, lane_usable)
            gather_int = np.where(lane_usable, gathered, 0)
            gd = gathered_distances(self.data, queries, gather_int, self.metric)
            dists = np.where(fresh, gd, np.inf)
            if filter_mask is not None:
                dists = np.where(filter_mask[gather_int], dists, np.inf)
            report.distance_computations += int(fresh.sum())
            report.skipped_distance_computations += int(
                (lane_usable & ~fresh).sum()
            )
            if track_ever:
                rows2d = np.broadcast_to(rown[:, None], gathered.shape)
                report.recomputed_distances += int(
                    (fresh & ever[rows2d, gather_int]).sum()
                )
                ever[rows2d[fresh], gathered[fresh]] = True
            # Unusable lanes become dummies: they sort after every real
            # entry in the reference merge, so they can never perturb a
            # row's buffer (unlike a real id with an inf distance, which
            # the reference keeps and later expands).
            merge_ids = np.where(lane_usable, cand_u32, INDEX_MASK).astype(np.uint32)
            merge_dists = dists

            # Forgettable reset (expanding rows only: a reseed iteration
            # `continue`s before the reset hook in the reference).
            if track_ever:
                since_reset += work.astype(np.int64)
                due = work & (since_reset >= reset_interval)
                if due.any():
                    since_reset[due] = 0
                    slab.reset_rows(due)
                    slab.register_topm(topm_ids, due)

        return topm_ids, topm_dists

    # ------------------------------------------------------------------
    # fast backend (dense visited, flat hash accounting)
    # ------------------------------------------------------------------
    def _search_fast(
        self,
        queries: np.ndarray,
        k: int,
        config: SearchConfig,
        filter_mask: np.ndarray | None,
    ) -> SearchResult:
        if k < 1:
            raise ValueError("k must be >= 1")
        filter_mask = self._checked_filter(filter_mask)
        batch = queries.shape[0]
        itopk = max(config.itopk, k)

        report = CostReport(
            algo="single_cta",
            batch_size=batch,
            hash_in_shared=True,
            hash_log2_size=11,
            kernel_launches=1,
        )
        self._stamp_extras(report, config)
        indices = np.empty((batch, k), dtype=np.uint32)
        distances = np.empty((batch, k), dtype=np.float64)
        chunk = self._chunk_rows_fast(config, itopk)
        for start in range(0, batch, chunk):  # memory-bounded chunks
            sub = queries[start : start + chunk]
            ids, dists = self._fast_block(
                sub, k, itopk, config, filter_mask, start, report
            )
            indices[start : start + sub.shape[0]] = ids
            distances[start : start + sub.shape[0]] = dists
        report.cta_count = batch
        return SearchResult(indices=indices, distances=distances, report=report)

    @hot_path
    def _fast_block(
        self,
        queries: np.ndarray,
        k: int,
        itopk: int,
        config: SearchConfig,
        filter_mask: np.ndarray | None,
        seed_offset: int,
        report: CostReport,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One dense lockstep chunk — the old ``_search_chunk_fast`` loop
        plus dead-query compaction (finished rows retire their results and
        leave the slab, so late iterations only pay for live queries)."""
        n = self.graph.num_nodes
        degree = self.graph.degree
        p = config.search_width
        width = p * degree
        max_iter = config.resolved_max_iterations()
        rows0 = queries.shape[0]

        out_ids = np.empty((rows0, k), dtype=np.uint32)
        out_dists = np.empty((rows0, k), dtype=np.float64)
        row_ids = np.arange(rows0, dtype=np.int64)

        # ⓪ per-query random initialization (bit-identical to the
        # reference's per-query default_rng streams, vectorized).
        cand_ids = random_init_block(config.seed, seed_offset, rows0, n, width)
        report.random_inits += rows0 * width

        visited = np.zeros((rows0, n), dtype=bool)
        rows_idx = np.arange(rows0)[:, None]
        cand_int = cand_ids.astype(np.int64)
        fresh = _first_occurrence_rows(cand_int) & ~visited[rows_idx, cand_int]
        visited[rows_idx, cand_int] = True
        cand_dists = gathered_distances(self.data, queries, cand_int, self.metric)
        cand_dists = np.where(fresh, cand_dists, np.inf)
        if filter_mask is not None:
            cand_dists = np.where(filter_mask[cand_int], cand_dists, np.inf)
        report.distance_computations += int(fresh.sum())
        report.skipped_distance_computations += int((~fresh).sum())
        report.hash_lookups += fresh.size
        report.hash_probes += 2 * fresh.size
        report.hash_insertions += int(fresh.sum())

        topm_ids = np.full((rows0, itopk), INDEX_MASK, dtype=np.uint32)
        topm_dists = np.full((rows0, itopk), np.inf)
        active = np.ones(rows0, dtype=bool)
        cand_width = np.full(rows0, width, dtype=np.int64)
        sentinels = n + np.arange(width, dtype=np.int64)

        iteration = 0
        while iteration < max_iter and active.any():
            # Dead-query compaction: retire finished rows and shrink every
            # slab once a quarter of the block is dead.  Counters are
            # untouched — dead rows contribute nothing to any charge.
            dead = ~active
            if dead.any() and _COMPACT_FRACTION * int(dead.sum()) >= dead.size:
                self._retire(
                    out_ids, out_dists, row_ids[dead], topm_ids[dead],
                    topm_dists[dead], k,
                )
                keep = active
                row_ids = row_ids[keep]
                queries = queries[keep]
                visited = visited[keep]
                topm_ids = topm_ids[keep]
                topm_dists = topm_dists[keep]
                cand_ids = cand_ids[keep]
                cand_int = cand_int[keep]
                cand_dists = cand_dists[keep]
                cand_width = cand_width[keep]
                active = active[keep]
                rows_idx = np.arange(active.size)[:, None]

            iteration += 1
            report.iterations += int(active.sum())
            _charge_iteration_sort(report, cand_width[active], itopk)

            # ① merge candidates into the top-M buffer.
            topm_ids, topm_dists = _merge_rows(
                topm_ids, topm_dists, cand_ids, cand_dists, itopk
            )

            # ② pick the best p unparented entries per row.
            selectable = ((topm_ids & PARENT_FLAG) == 0) & (topm_ids != INDEX_MASK)
            selectable &= active[:, None]
            pick_order = np.argsort(~selectable, axis=1, kind="stable")[:, :p]
            picked_mask = np.take_along_axis(selectable, pick_order, axis=1)
            has_any = picked_mask.any(axis=1)
            active = active & has_any
            if not active.any():
                break

            parent_entries = np.take_along_axis(topm_ids, pick_order, axis=1)
            parent_nodes = (parent_entries & INDEX_MASK).astype(np.int64)
            flagged = np.where(
                picked_mask & active[:, None],
                parent_entries | PARENT_FLAG,
                parent_entries,
            )
            np.put_along_axis(topm_ids, pick_order, flagged, axis=1)

            # Inactive/unselected slots traverse a harmless stand-in
            # (node 0) whose candidates are masked to inf below.
            usable = picked_mask & active[:, None]
            parent_nodes = np.where(usable, parent_nodes, 0)

            # ② gather neighbors, ③ compute first-time distances.
            cand_ids = self.graph.neighbors[parent_nodes].reshape(active.size, -1)
            cand_width = usable.sum(axis=1) * degree
            report.candidate_gathers += int(usable.sum()) * degree
            cand_int = cand_ids.astype(np.int64)
            lane_usable = np.repeat(usable, degree, axis=1)
            lane_ids = np.where(lane_usable, cand_int, sentinels)
            fresh = (
                _first_occurrence_rows(lane_ids)
                & lane_usable
                & ~visited[rows_idx, cand_int]
            )
            visited[rows_idx, cand_int] |= lane_usable
            cand_dists = gathered_distances(self.data, queries, cand_int, self.metric)
            cand_dists = np.where(fresh, cand_dists, np.inf)
            if filter_mask is not None:
                cand_dists = np.where(filter_mask[cand_int], cand_dists, np.inf)
            report.distance_computations += int(fresh.sum())
            report.skipped_distance_computations += int((lane_usable & ~fresh).sum())
            report.hash_lookups += int(lane_usable.sum())
            report.hash_probes += 2 * int(lane_usable.sum())
            report.hash_insertions += int(fresh.sum())

        self._retire(out_ids, out_dists, row_ids, topm_ids, topm_dists, k)
        return out_ids, out_dists

    @staticmethod
    def _retire(out_ids, out_dists, row_ids, topm_ids, topm_dists, k) -> None:
        out_ids[row_ids] = topm_ids[:, :k] & INDEX_MASK
        out_dists[row_ids] = topm_dists[:, :k]

    # ------------------------------------------------------------------
    # sizing, validation, accounting
    # ------------------------------------------------------------------
    def _checked_filter(self, filter_mask):
        if filter_mask is None:
            return None
        filter_mask = np.asarray(filter_mask, dtype=bool)
        if filter_mask.shape != (self.graph.num_nodes,):
            raise ValueError("filter_mask must have one entry per dataset row")
        if not filter_mask.any():
            raise ValueError("filter_mask excludes every node")
        return filter_mask

    def _gather_bytes_per_row(self, width: int, itopk: int) -> int:
        """Per-live-row bytes of candidate lanes + distance gather scratch.

        The gather materializes ``width`` vectors at the *storage* width
        plus an fp32 compute copy — so fp16 datasets genuinely halve the
        dominant term instead of over-allocating as if every lane were a
        full-precision row.
        """
        dim = int(self.data.shape[1])
        storage = int(self.data.dtype.itemsize)
        compute = 8 if self.data.dtype == np.float64 else 4
        lanes = width * 32  # ids/dists/masks/scratch per candidate lane
        gather = width * dim * (storage + compute)
        return lanes + gather + 12 * itopk

    def _chunk_rows_fast(self, config: SearchConfig, itopk: int) -> int:
        width = config.search_width * self.graph.degree
        per_row = self.graph.num_nodes + self._gather_bytes_per_row(width, itopk)
        return max(1, _VISITED_BUDGET_BYTES // max(1, per_row))

    def _chunk_rows_reference(self, config: SearchConfig, algo: str) -> int:
        max_iter = config.resolved_max_iterations()
        degree = self.graph.degree
        if algo == "single_cta":
            hash_config = _default_hash_config("single_cta", config)
            if hash_config.kind == "forgettable":
                log2 = hash_config.log2_size
                ever = self.graph.num_nodes  # ever-computed bool slab
            else:
                log2 = max(
                    hash_config.log2_size,
                    standard_table_log2_size(max_iter, config.search_width, degree),
                )
                ever = 0
            width = config.search_width * degree
            itopk = config.itopk
        else:
            num_cta = _resolve_cta_per_query(config)
            hash_config = config.hash_table or HashTableConfig(
                kind="standard", log2_size=13
            )
            log2 = max(
                hash_config.log2_size,
                standard_table_log2_size(max_iter, num_cta, degree),
            )
            ever = 0
            width = degree
            itopk = 32
        per_row = 4 * (1 << log2) + ever + self._gather_bytes_per_row(width, itopk)
        return max(1, _VISITED_BUDGET_BYTES // max(1, per_row))

    def _stamp_extras(self, report: CostReport, config: SearchConfig) -> None:
        """Record the knobs the GPU cost model prices per-point.

        ``team_size`` 0 means "auto from dim" and is resolved by
        ``GpuCostModel.search_time`` itself; ``dtype_bytes`` is the
        *storage* width (2 for fp16), which scales simulated DRAM traffic
        and load-waste.
        """
        report.extras["team_size"] = config.team_size
        report.extras["dtype_bytes"] = int(self.data.dtype.itemsize)
        report.extras["precision"] = self.precision


# ----------------------------------------------------------------------
# functional wrappers
# ----------------------------------------------------------------------
def search_batch_fast(
    data: np.ndarray,
    graph: FixedDegreeGraph,
    queries: np.ndarray,
    k: int,
    config: SearchConfig | None = None,
    metric: str = "sqeuclidean",
    filter_mask: np.ndarray | None = None,
) -> SearchResult:
    """Lockstep single-CTA-semantics search over a whole query batch.

    Functional form of ``TraversalEngine.search(mode="fast")`` for callers
    that don't hold an engine; building an index-level engine (see
    ``CagraIndex.search_fast``) amortizes the fp16 conversion instead.
    """
    config = config or SearchConfig()
    engine = TraversalEngine(
        data, graph, metric=metric, precision=getattr(config, "precision", "fp32")
    )
    return engine.search(queries, k, config=config, mode="fast", filter_mask=filter_mask)
