"""Public index API: build a CAGRA graph once, search it many times.

Typical use::

    from repro import CagraIndex, GraphBuildConfig, SearchConfig

    index = CagraIndex.build(dataset, GraphBuildConfig(graph_degree=32))
    result = index.search(queries, k=10, config=SearchConfig(itopk=64))

The index owns the dataset (possibly FP16-quantized), the optimized graph,
and the build-time reports; :meth:`save` / :meth:`load` round-trip
everything through a single ``.npz`` file.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.config import GraphBuildConfig, SearchConfig
from repro.core.distances import METRICS, as_storage_dtype
from repro.core.graph import INDEX_MASK, MAX_DATASET_SIZE, FixedDegreeGraph
from repro.core.nn_descent import KnnGraphResult, build_knn_graph
from repro.core.optimize import OptimizeReport, optimize_graph
from repro.core.search import CostReport, SearchResult

__all__ = ["BuildReport", "CagraIndex"]


@dataclass
class BuildReport:
    """Timing and work breakdown of one index build.

    Mirrors the Fig. 11 breakdown: initial k-NN graph build vs graph
    optimization.
    """

    knn_seconds: float
    optimize_seconds: float
    knn_distance_computations: int
    nn_descent_iterations: int
    optimize: OptimizeReport

    @property
    def total_seconds(self) -> float:
        return self.knn_seconds + self.optimize_seconds


def _repair_unfilled_edges(
    edges: np.ndarray, distances: np.ndarray, num_nodes: int, seed: int
) -> tuple[np.ndarray, dict]:
    """Replace unfilled search slots in ``edges`` with valid neighbor ids.

    ``SearchResult.indices`` marks unfilled slots with ``INDEX_MASK`` (and
    ``+inf`` distance) — e.g. when the index holds fewer reachable nodes
    than the requested ``k``.  Writing those straight into a graph would
    create dangling edges to a nonexistent node, so each one is re-drawn
    as a random valid node id, avoiding duplicates within the row when the
    index is large enough to allow it.

    Returns ``(repaired_edges, stats)`` where ``stats`` counts the repair
    work (rows touched, edges re-drawn, total RNG draws) so callers can
    surface repair cost through ``on_stage``.
    """
    edges = edges.copy()
    unfilled = (edges == INDEX_MASK) | ~np.isfinite(distances)
    repaired_edges = 0
    rng_draws = 0
    rows = np.nonzero(unfilled.any(axis=1))[0]
    for i in rows:
        # A distinct stream per row, disjoint from the search's
        # ``[seed, query]`` streams (three-element spawn key).
        rng = np.random.default_rng([seed, int(i), 0x0E11])
        present = {int(x) for x in edges[i][~unfilled[i]]}
        for j in np.nonzero(unfilled[i])[0]:
            candidate = int(rng.integers(0, num_nodes))
            rng_draws += 1
            for _ in range(32):
                if candidate not in present or len(present) >= num_nodes:
                    break
                candidate = int(rng.integers(0, num_nodes))
                rng_draws += 1
            present.add(candidate)
            edges[i, j] = np.uint32(candidate)
            repaired_edges += 1
    stats = {
        "repaired_rows": int(len(rows)),
        "repaired_edges": repaired_edges,
        "repair_rng_draws": rng_draws,
    }
    return edges, stats


class CagraIndex:
    """A CAGRA ANN index: dataset + fixed-degree optimized graph."""

    def __init__(
        self,
        dataset: np.ndarray,
        graph: FixedDegreeGraph,
        metric: str = "sqeuclidean",
        build_config: GraphBuildConfig | None = None,
        build_report: BuildReport | None = None,
    ):
        dataset = np.asarray(dataset)
        if dataset.ndim != 2:
            raise ValueError("dataset must be a 2-D array")
        if dataset.shape[0] != graph.num_nodes:
            raise ValueError(
                f"dataset has {dataset.shape[0]} rows but graph has "
                f"{graph.num_nodes} nodes"
            )
        if metric not in METRICS:
            raise ValueError(f"metric must be one of {METRICS}")
        self.dataset = dataset
        self.graph = graph
        self.metric = metric
        self.build_config = build_config
        self.build_report = build_report
        self._engines: dict = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: np.ndarray,
        config: GraphBuildConfig | None = None,
        dataset_dtype: str = "float32",
    ) -> "CagraIndex":
        """Build an index: NN-descent initial graph, then CAGRA optimization.

        Args:
            dataset: ``(N, dim)`` vectors, ``2 <= N <= 2**31 - 1`` (the MSB
                parented flag halves the id space, as in the paper).
            config: build parameters (degree, reordering flavour, metric...).
            dataset_dtype: ``float32`` or ``float16`` storage (the paper's
                half-precision mode).
        """
        config = config or GraphBuildConfig()
        dataset = np.asarray(dataset)
        if dataset.ndim != 2 or dataset.shape[0] < 2:
            raise ValueError("dataset must be (N >= 2, dim)")
        if dataset.shape[0] > MAX_DATASET_SIZE:
            raise ValueError(
                f"dataset too large: the 1-bit parented flag caps N at "
                f"{MAX_DATASET_SIZE}"
            )
        stored = as_storage_dtype(dataset, dataset_dtype)

        started = time.perf_counter()
        knn = build_knn_graph(stored, config.resolved_intermediate_degree, config)
        knn_seconds = time.perf_counter() - started

        started = time.perf_counter()
        graph, opt_report = optimize_graph(knn, config)
        optimize_seconds = time.perf_counter() - started

        report = BuildReport(
            knn_seconds=knn_seconds,
            optimize_seconds=optimize_seconds,
            knn_distance_computations=knn.distance_computations,
            nn_descent_iterations=knn.iterations,
            optimize=opt_report,
        )
        return cls(
            stored,
            graph,
            metric=config.metric,
            build_config=config,
            build_report=report,
        )

    @classmethod
    def from_knn_result(
        cls, dataset: np.ndarray, knn: KnnGraphResult, config: GraphBuildConfig
    ) -> "CagraIndex":
        """Optimize a pre-built initial k-NN graph (reuses NN-descent work
        across ablation configurations)."""
        started = time.perf_counter()
        graph, opt_report = optimize_graph(knn, config)
        optimize_seconds = time.perf_counter() - started
        report = BuildReport(
            knn_seconds=0.0,
            optimize_seconds=optimize_seconds,
            knn_distance_computations=knn.distance_computations,
            nn_descent_iterations=knn.iterations,
            optimize=opt_report,
        )
        return cls(
            np.asarray(dataset),
            graph,
            metric=config.metric,
            build_config=config,
            build_report=report,
        )

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def engine(self, precision: str = "fp32"):
        """The cached :class:`~repro.core.traversal.TraversalEngine` for
        this index at the given dataset ``precision``.

        Caching amortizes the fp16 storage conversion across searches; the
        key includes the dataset/graph identities so a stale engine can
        never serve a mutated index.
        """
        from repro.core.traversal import TraversalEngine

        key = (precision, id(self.dataset), id(self.graph))
        engine = self._engines.get(key)
        if engine is None:
            engine = TraversalEngine(
                self.dataset, self.graph, metric=self.metric, precision=precision
            )
            self._engines = {key: engine}
        return engine

    def _config_engine(self, config: SearchConfig | None):
        return self.engine(getattr(config, "precision", None) or "fp32")

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        config: SearchConfig | None = None,
        num_sms: int = 108,
        filter_mask: np.ndarray | None = None,
        on_stage=None,
    ) -> SearchResult:
        """k-ANN search for a batch of queries (see :func:`search_batch`).

        ``filter_mask`` (length-N bool) restricts results to rows whose
        entry is True (pre-filtered search).  ``on_stage(name, seconds,
        counters)`` is the unified instrumentation hook (one
        ``core.search`` event per call; see :mod:`repro.api`).
        """
        started = time.perf_counter() if on_stage is not None else 0.0
        result = self._config_engine(config).search(
            queries,
            k,
            config=config,
            mode="reference",
            num_sms=num_sms,
            filter_mask=filter_mask,
        )
        if on_stage is not None:
            on_stage(
                "core.search",
                time.perf_counter() - started,
                result.report.as_dict(),
            )
        return result

    def search_fast(
        self,
        queries: np.ndarray,
        k: int = 10,
        config: SearchConfig | None = None,
        filter_mask: np.ndarray | None = None,
        on_stage=None,
    ) -> SearchResult:
        """Vectorized lockstep batch search (single-CTA semantics, exact
        visited tracking) — typically ~10x faster in Python than
        :meth:`search`; see :mod:`repro.core.traversal`.  ``on_stage``
        is the unified instrumentation hook (one ``core.search_fast``
        event per call)."""
        started = time.perf_counter() if on_stage is not None else 0.0
        result = self._config_engine(config).search(
            queries,
            k,
            config=config,
            mode="fast",
            filter_mask=filter_mask,
        )
        if on_stage is not None:
            on_stage(
                "core.search_fast",
                time.perf_counter() - started,
                result.report.as_dict(),
            )
        return result

    # ------------------------------------------------------------------
    # incremental insertion
    # ------------------------------------------------------------------
    def extend(
        self, new_vectors: np.ndarray, itopk: int = 0, seed: int = 0, on_stage=None
    ) -> "CagraIndex":
        """Insert new vectors without rebuilding (cuVS CAGRA ``extend``).

        Each new vector searches the current index for its ``degree``
        nearest neighbors, which become its out-edges; reverse edges are
        planted by replacing the last (least important) slot of half of
        its targets, so new vectors stay reachable.  Returns a *new*
        index — the original is untouched.

        Quality note: this is the standard search-based insertion; edges
        among the new vectors themselves only appear via reverse links,
        so after extending by a large fraction of the index a full
        rebuild recovers graph quality (exactly the cuVS guidance).

        Unfilled search slots (``INDEX_MASK``, e.g. on a near-empty index
        with fewer reachable nodes than ``degree``) are repaired with
        random valid neighbors instead of being written as dangling
        edges; :func:`~repro.core.validation.validate_index` flags any
        graph where such a sentinel survived.

        ``on_stage(name, seconds, counters)`` receives one ``core.extend``
        event covering the whole insertion, with counters for the
        neighbor-search cost (``distance_computations``), rows added, and
        the edge-repair work (``repaired_rows`` / ``repaired_edges`` /
        ``repair_rng_draws`` / ``reverse_links_planted``) so streaming
        policies can observe the measured repair cost per batch.
        """
        started = time.perf_counter() if on_stage is not None else 0.0
        new_vectors = np.atleast_2d(np.asarray(new_vectors))
        if new_vectors.shape[1] != self.dim:
            raise ValueError(
                f"new vectors have dim {new_vectors.shape[1]}, index has {self.dim}"
            )
        degree = self.degree
        if self.size + new_vectors.shape[0] > MAX_DATASET_SIZE:
            raise ValueError("extend would exceed the 2**31 - 1 id space")
        new_vectors = as_storage_dtype(new_vectors, str(self.dataset.dtype))
        config = SearchConfig(
            itopk=itopk or max(2 * degree, 32), algo="single_cta", seed=seed
        )
        result = self.search_fast(new_vectors, k=degree, config=config)

        n = self.size
        m = new_vectors.shape[0]
        new_edges, repair_stats = _repair_unfilled_edges(
            result.indices.astype(np.uint32), result.distances, n, seed
        )
        neighbors = np.vstack([self.graph.neighbors, new_edges])
        # Reverse links: the new node replaces the last slot of its first
        # degree/2 targets (unless already present).
        reverse_links = 0
        for i in range(m):
            new_id = np.uint32(n + i)
            for target in new_edges[i][: degree // 2]:
                row = neighbors[int(target)]
                if new_id not in row:
                    row[-1] = new_id
                    reverse_links += 1
        if on_stage is not None:
            counters = dict(result.report.as_dict())
            counters.update(repair_stats)
            counters["rows_added"] = m
            counters["reverse_links_planted"] = reverse_links
            on_stage("core.extend", time.perf_counter() - started, counters)
        return CagraIndex(
            np.vstack([self.dataset, new_vectors]),
            FixedDegreeGraph(neighbors),
            metric=self.metric,
            build_config=self.build_config,
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialize dataset + graph + metric to a ``.npz`` file."""
        np.savez_compressed(
            path,
            dataset=self.dataset,
            neighbors=self.graph.neighbors,
            metric=np.array(self.metric),
        )

    @classmethod
    def load(cls, path: str) -> "CagraIndex":
        """Load an index written by :meth:`save`."""
        with np.load(path, allow_pickle=False) as archive:
            dataset = archive["dataset"]
            neighbors = archive["neighbors"]
            metric = str(archive["metric"])
        return cls(dataset, FixedDegreeGraph(neighbors), metric=metric)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        return int(self.dataset.shape[0])

    @property
    def dim(self) -> int:
        return int(self.dataset.shape[1])

    @property
    def degree(self) -> int:
        return self.graph.degree

    def memory_bytes(self) -> int:
        """Device-memory footprint of dataset + graph."""
        return int(self.dataset.nbytes + self.graph.neighbors.nbytes)

    def __repr__(self) -> str:
        return (
            f"CagraIndex(size={self.size}, dim={self.dim}, degree={self.degree}, "
            f"metric={self.metric!r}, dtype={self.dataset.dtype})"
        )
