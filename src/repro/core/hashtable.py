"""Open-addressing visited-node hash tables (Sec. IV-B3).

The CAGRA search computes a candidate's distance only the first time the
node appears; a hash table records visited nodes.  Two variants:

* :class:`StandardHashTable` — sized for the whole search
  (``>= 2 * I_max * p * d`` entries, paper's sizing rule); lives in device
  memory in the multi-CTA implementation.
* :class:`ForgettableHashTable` — a small table (paper: 2^8–2^13 entries)
  that models the shared-memory table of the single-CTA kernel: it is
  wiped every ``reset_interval`` iterations and re-seeded with the current
  internal top-M list.  False "not visited" answers after a reset merely
  cause re-computed distances, never wrong results.

Both use linear probing with a multiplicative hash, mirroring the CUDA
implementation's open addressing, and both count their operations so the
GPU cost model can charge shared- vs device-memory latencies.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import INDEX_MASK

__all__ = ["StandardHashTable", "ForgettableHashTable", "standard_table_log2_size"]

_EMPTY = np.uint32(0xFFFFFFFF)
#: Knuth multiplicative hashing constant (2^32 / phi), kept as a Python int:
#: the hash mixes in arbitrary-precision integer arithmetic and masks back
#: to 32 bits, so it can never trip numpy overflow warnings under
#: ``-W error`` (numpy scalar multiplies would).
_HASH_MULT = 0x9E3779B9
_KEY_MASK = 0xFFFFFFFF

#: Hard bound on table size (2^28 slots = 1 GiB of uint32), mirroring the
#: constructor's ``log2_size`` range check.
_MAX_LOG2_SIZE = 28


def standard_table_log2_size(max_iterations: int, search_width: int, degree: int) -> int:
    """Paper sizing rule: at least ``2 * I_max * p * d`` entries.

    Pure integer arithmetic (``bit_length`` instead of ``np.log2``) so the
    result is exact for any parameter magnitude; clamped to the
    constructor's ``[8, 28]`` supported range.
    """
    needed = 2 * max_iterations * search_width * degree + 1
    return min(_MAX_LOG2_SIZE, max(8, (needed - 1).bit_length()))


class StandardHashTable:
    """Open-addressing insert-only set of ``uint32`` node ids.

    ``insert_unique`` is the only mutating operation the search needs: it
    inserts every id that is not already present and reports which ones
    were new (those get a distance computation).
    """

    def __init__(self, log2_size: int):
        if not 2 <= log2_size <= _MAX_LOG2_SIZE:
            raise ValueError(f"log2_size out of range [2, {_MAX_LOG2_SIZE}]")
        self.log2_size = log2_size
        self.size = 1 << log2_size
        self._mask = self.size - 1
        self._slots = np.full(self.size, _EMPTY, dtype=np.uint32)
        self.lookups = 0  # probe sequences started
        self.probes = 0  # individual slot inspections
        self.insertions = 0
        self.resets = 0

    def _first_slot(self, key: int) -> int:
        # Knuth multiplicative hashing: mask the key to 32 bits *before*
        # the multiply-widen, multiply mod 2^32, keep the *top* log2_size
        # bits — the high bits of the truncated product are the well-mixed
        # ones (taking high bits of the full 64-bit product would cluster
        # small keys into the first slots).
        product = ((int(key) & _KEY_MASK) * _HASH_MULT) & _KEY_MASK
        return product >> (32 - self.log2_size)

    def contains(self, key: int) -> bool:
        """Membership test (probe sequence ends at the first empty slot)."""
        self.lookups += 1
        slot = self._first_slot(key)
        for _ in range(self.size):
            self.probes += 1
            value = self._slots[slot]
            if value == np.uint32(key):
                return True
            if value == _EMPTY:
                return False
            slot = (slot + 1) & self._mask
        return False

    def insert(self, key: int) -> bool:
        """Insert ``key``; returns True if it was not present before.

        A full table silently reports the key as "seen" — the search then
        skips the distance computation, which only costs recall, exactly
        like a saturated on-GPU table would.
        """
        self.lookups += 1
        slot = self._first_slot(key)
        for _ in range(self.size):
            self.probes += 1
            value = self._slots[slot]
            if value == np.uint32(key):
                return False
            if value == _EMPTY:
                self._slots[slot] = np.uint32(key)
                self.insertions += 1
                return True
            slot = (slot + 1) & self._mask
        return False

    def insert_unique(self, keys: np.ndarray) -> np.ndarray:
        """Insert a batch of ids; boolean mask of the newly inserted ones.

        Duplicate ids inside ``keys`` are handled like the serialized GPU
        warp would: only the first occurrence reports "new".
        """
        keys = np.asarray(keys, dtype=np.uint32)
        fresh = np.empty(keys.shape, dtype=bool)
        flat = keys.ravel()
        out = fresh.ravel()
        for i, key in enumerate(flat):
            out[i] = self.insert(int(key))
        return fresh

    def occupancy(self) -> float:
        """Fraction of slots in use."""
        return float((self._slots != _EMPTY).sum()) / self.size

    def reset(self) -> None:
        """Wipe the table."""
        self._slots.fill(_EMPTY)
        self.resets += 1


class ForgettableHashTable(StandardHashTable):
    """Small periodically-reset table emulating the shared-memory variant.

    Call :meth:`maybe_reset` once per search iteration with the current
    top-M node ids; every ``reset_interval`` iterations the table forgets
    everything except those ids (Sec. IV-B3: "after resetting the table, we
    only register the nodes present in the internal top-M list").
    """

    def __init__(self, log2_size: int, reset_interval: int = 1):
        super().__init__(log2_size)
        if reset_interval < 1:
            raise ValueError("reset_interval must be >= 1")
        self.reset_interval = reset_interval
        self._iterations_since_reset = 0

    def maybe_reset(self, topm_ids: np.ndarray) -> bool:
        """Periodic reset hook; returns True when a reset happened."""
        self._iterations_since_reset += 1
        if self._iterations_since_reset < self.reset_interval:
            return False
        self._iterations_since_reset = 0
        self.reset()
        ids = np.asarray(topm_ids, dtype=np.uint32).ravel()
        # Unfilled top-M slots hold the INDEX_MASK dummy id; registering it
        # would waste slots of the small shared-memory-sized table (one per
        # reset) and lengthen probe sequences for real ids.  A real node can
        # never carry this id (N is capped at 2^31 - 1).
        for key in ids[ids != INDEX_MASK]:
            self.insert(int(key))
        return True
