"""Fixed out-degree graph container.

The CAGRA graph is "a directed graph where the degree ``d`` of all nodes is
the same" (Sec. III-B), which maps to a dense ``(N, d)`` ``uint32`` array —
exactly the layout the CUDA kernels consume.  The same container also holds
the intermediate NN-descent k-NN graph (degree ``d_init``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedDegreeGraph", "PARENT_FLAG", "INDEX_MASK", "MAX_DATASET_SIZE"]

#: MSB of a uint32 node id; used by the search as the 1-bit "has been a
#: parent" flag (Sec. IV-B4).
PARENT_FLAG = np.uint32(1 << 31)

#: Mask clearing :data:`PARENT_FLAG` from a flagged id.
INDEX_MASK = np.uint32((1 << 31) - 1)

#: Using the MSB as a flag halves the addressable id space (paper: "the
#: supported maximum size of the dataset is only 2^31 - 1").
MAX_DATASET_SIZE = int(INDEX_MASK)


@dataclass
class FixedDegreeGraph:
    """A directed graph where every node has exactly ``degree`` out-edges.

    Attributes:
        neighbors: ``(num_nodes, degree)`` uint32 array; row ``i`` lists the
            out-neighbors of node ``i``, most important first (after CAGRA
            optimization the order encodes edge rank).
    """

    neighbors: np.ndarray

    def __post_init__(self) -> None:
        neighbors = np.asarray(self.neighbors)
        if neighbors.ndim != 2:
            raise ValueError(f"neighbors must be 2-D, got shape {neighbors.shape}")
        if neighbors.dtype != np.uint32:
            if np.issubdtype(neighbors.dtype, np.integer):
                if neighbors.size and (
                    neighbors.min() < 0 or neighbors.max() > MAX_DATASET_SIZE
                ):
                    raise ValueError("node ids must fit in 31 bits")
                neighbors = neighbors.astype(np.uint32)
            else:
                raise TypeError("neighbors must be an integer array")
        if neighbors.size and neighbors.max() >= neighbors.shape[0]:
            raise ValueError("neighbor id out of range")
        self.neighbors = np.ascontiguousarray(neighbors)

    @property
    def num_nodes(self) -> int:
        return int(self.neighbors.shape[0])

    @property
    def degree(self) -> int:
        return int(self.neighbors.shape[1])

    def __len__(self) -> int:
        return self.num_nodes

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbor ids of ``node`` (a view, do not mutate)."""
        return self.neighbors[node]

    def has_self_loops(self) -> bool:
        """True if any node lists itself as a neighbor."""
        ids = np.arange(self.num_nodes, dtype=np.uint32)[:, None]
        return bool(np.any(self.neighbors == ids))

    def in_degrees(self) -> np.ndarray:
        """In-degree of every node (not fixed, unlike the out-degree)."""
        return np.bincount(
            self.neighbors.ravel().astype(np.int64), minlength=self.num_nodes
        )

    def reversed_edge_lists(self) -> list[np.ndarray]:
        """Incoming-edge source lists per node, each ordered by the rank the
        edge has in its source row (ascending).

        This is the "reversed graph ... sorted by the rank in the pruned
        graph" of Sec. III-B2: position ``r`` in a source row is the edge's
        rank, and lower-rank (more important) reverse edges come first.
        """
        n, d = self.neighbors.shape
        dst = self.neighbors.ravel().astype(np.int64)
        src = np.repeat(np.arange(n, dtype=np.uint32), d)
        rank = np.tile(np.arange(d, dtype=np.int64), n)
        # Sort primarily by destination, secondarily by rank: stable sort on
        # the composite key keeps reverse lists rank-ordered.
        order = np.lexsort((rank, dst))
        dst_sorted = dst[order]
        src_sorted = src[order]
        boundaries = np.searchsorted(dst_sorted, np.arange(n + 1))
        return [
            src_sorted[boundaries[i] : boundaries[i + 1]] for i in range(n)
        ]

    def copy(self) -> "FixedDegreeGraph":
        return FixedDegreeGraph(self.neighbors.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FixedDegreeGraph):
            return NotImplemented
        return (
            self.neighbors.shape == other.neighbors.shape
            and bool(np.array_equal(self.neighbors, other.neighbors))
        )
