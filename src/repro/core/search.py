"""The CAGRA search algorithm (Sec. IV).

The search walks the fixed-degree graph with a sequential buffer made of an
**internal top-M list** and a ``p×d`` **candidate list** (Fig. 6):

* ⓪ initialization — ``p×d`` uniformly random nodes seed the candidate
  list (no hierarchy: random sampling replaces HNSW's upper layers);
* ① top-M update — merge the candidate list into the top-M list;
* ② traversal — pick the best ``p`` nodes of the top-M list that have not
  been parents yet (the MSB of the stored index is the 1-bit parented
  flag, Sec. IV-B4), and gather their ``d`` neighbors each;
* ③ distance calculation — compute distances only for nodes seen for the
  first time, tracked by an open-addressing hash table.

Iterate ①–③ until every top-M entry has been a parent, then return the
top-k prefix.

Two hardware mappings exist (Table II).  **single-CTA** processes one
query per CTA with the forgettable shared-memory hash — the large-batch
path.  **multi-CTA** spreads one query over several CTAs, each running a
narrow (``p=1``, 32-entry top-M) instance of the same loop while *sharing*
one device-memory hash table, so different CTAs explore disjoint regions —
the small-batch / high-recall path.

Python cannot run CUDA, so this module executes the *algorithm* exactly
(ids, distances and recall are real) and meters every operation class into
a :class:`CostReport`; :mod:`repro.gpusim` turns those counters into
simulated kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import HashTableConfig, SearchConfig
from repro.core.distances import distances_to_query
from repro.core.graph import INDEX_MASK, PARENT_FLAG, FixedDegreeGraph
from repro.core.hashtable import (
    ForgettableHashTable,
    StandardHashTable,
    standard_table_log2_size,
)
from repro.core.topm import bitonic_comparator_count, merge_topm, sort_strategy

__all__ = ["CostReport", "SearchResult", "search_batch", "search_single_query"]  # repro-lint: disable=RL005 — deprecation alias via module __getattr__


@dataclass
class CostReport:
    """Operation counters for one search call (batch-wide totals).

    The GPU cost model prices these; the algorithmic outputs never depend
    on them.
    """

    algo: str = "single_cta"
    batch_size: int = 0
    cta_count: int = 0
    iterations: int = 0
    distance_computations: int = 0
    skipped_distance_computations: int = 0
    recomputed_distances: int = 0
    candidate_gathers: int = 0
    sort_comparator_ops: int = 0
    radix_sorted_elements: int = 0
    serial_queue_ops: int = 0
    hash_lookups: int = 0
    hash_probes: int = 0
    hash_insertions: int = 0
    hash_resets: int = 0
    hash_in_shared: bool = True
    hash_log2_size: int = 0
    random_inits: int = 0
    kernel_launches: int = 1
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat counter mapping for the unified ``repro.api`` surface.

        Keys match the field names; ``extras`` is folded in last so ad-hoc
        counters appear alongside the standard ones.
        """
        out = {
            "algo": self.algo,
            "batch_size": self.batch_size,
            "cta_count": self.cta_count,
            "iterations": self.iterations,
            "distance_computations": self.distance_computations,
            "skipped_distance_computations": self.skipped_distance_computations,
            "recomputed_distances": self.recomputed_distances,
            "candidate_gathers": self.candidate_gathers,
            "sort_comparator_ops": self.sort_comparator_ops,
            "radix_sorted_elements": self.radix_sorted_elements,
            "serial_queue_ops": self.serial_queue_ops,
            "hash_lookups": self.hash_lookups,
            "hash_probes": self.hash_probes,
            "hash_insertions": self.hash_insertions,
            "hash_resets": self.hash_resets,
            "hash_in_shared": self.hash_in_shared,
            "hash_log2_size": self.hash_log2_size,
            "random_inits": self.random_inits,
            "kernel_launches": self.kernel_launches,
        }
        out.update(self.extras)
        return out

    def merge_from(self, other: "CostReport") -> None:
        """Accumulate another report's counters (per-query → batch)."""
        self.cta_count += other.cta_count
        self.iterations += other.iterations
        self.distance_computations += other.distance_computations
        self.skipped_distance_computations += other.skipped_distance_computations
        self.recomputed_distances += other.recomputed_distances
        self.candidate_gathers += other.candidate_gathers
        self.sort_comparator_ops += other.sort_comparator_ops
        self.radix_sorted_elements += other.radix_sorted_elements
        self.serial_queue_ops += other.serial_queue_ops
        self.hash_lookups += other.hash_lookups
        self.hash_probes += other.hash_probes
        self.hash_insertions += other.hash_insertions
        self.hash_resets += other.hash_resets
        self.random_inits += other.random_inits


@dataclass
class SearchResult:
    """Batched ANN search output.

    Attributes:
        indices: ``(batch, k)`` neighbor ids (``INDEX_MASK`` marks unfilled
            slots, which only happens on pathologically small graphs).
        distances: matching distances (``inf`` on unfilled slots).
        report: operation counters for the whole batch.
    """

    indices: np.ndarray
    distances: np.ndarray
    report: CostReport


def _make_hash_table(
    hash_config: HashTableConfig, max_iterations: int, search_width: int, degree: int
) -> StandardHashTable:
    if hash_config.kind == "forgettable":
        return ForgettableHashTable(
            hash_config.log2_size, reset_interval=hash_config.reset_interval
        )
    log2 = max(
        hash_config.log2_size,
        standard_table_log2_size(max_iterations, search_width, degree),
    )
    return StandardHashTable(log2)


def _default_hash_config(algo: str, config: SearchConfig) -> HashTableConfig:
    """Table II defaults: forgettable/shared for single-CTA, standard/device
    for multi-CTA."""
    if config.hash_table is not None:
        return config.hash_table
    if algo == "single_cta":
        return HashTableConfig(kind="forgettable", log2_size=11, reset_interval=2)
    return HashTableConfig(kind="standard", log2_size=13)


def _charge_sort(report: CostReport, candidate_length: int, topm: int) -> None:
    """Meter step ①'s sort+merge for one iteration."""
    strategy = sort_strategy(candidate_length)
    if strategy == "warp_bitonic":
        report.sort_comparator_ops += bitonic_comparator_count(candidate_length)
    else:
        report.radix_sorted_elements += candidate_length
    # Bitonic merge of two sorted runs of total length M + len.
    report.sort_comparator_ops += bitonic_comparator_count(topm + candidate_length) // max(
        1, (topm + candidate_length).bit_length()
    ) * 2


def _greedy_core(
    data: np.ndarray,
    graph: FixedDegreeGraph,
    query: np.ndarray,
    itopk: int,
    search_width: int,
    max_iterations: int,
    min_iterations: int,
    table: StandardHashTable,
    rng: np.random.Generator,
    metric: str,
    report: CostReport,
    seed_ids: np.ndarray | None = None,
    filter_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """One CTA's greedy loop; returns the final (ids, dists) top-M buffer.

    This is the sequential *executable specification* of the traversal:
    production entry points run the array-parallel
    :class:`repro.core.traversal.TraversalEngine` instead, which is pinned
    bitwise against this loop (internals tests cross-validate the two).

    ``seed_ids`` overrides the random initialization (used by tests and by
    multi-CTA workers that partition the random seeds).

    ``filter_mask`` implements filtered search the way the production
    kernels do: a node whose mask entry is False gets its distance forced
    to +inf right after computation, so it can never enter the top-M list
    (and therefore never the results), while the graph remains fully
    traversable through the unfiltered nodes.
    """
    n = graph.num_nodes
    degree = graph.degree
    width = search_width * degree
    # All node ids whose distance was ever computed; distances computed
    # again after a forgettable reset are L2-cached reloads, which the
    # cost model prices below DRAM traffic.
    ever_computed: set[int] = set()

    # ⓪ random initialization.
    if seed_ids is None:
        seed_ids = rng.integers(0, n, size=width, dtype=np.uint32)
    else:
        seed_ids = np.asarray(seed_ids, dtype=np.uint32)
    report.random_inits += len(seed_ids)
    fresh = table.insert_unique(seed_ids)
    cand_ids = seed_ids.copy()
    cand_dists = np.full(len(seed_ids), np.inf)
    if fresh.any():
        cand_dists[fresh] = distances_to_query(
            data, query, cand_ids[fresh], metric=metric
        )
        report.distance_computations += int(fresh.sum())
        ever_computed.update(int(x) for x in cand_ids[fresh])
    if filter_mask is not None:
        cand_dists[~filter_mask[cand_ids.astype(np.int64)]] = np.inf
    report.skipped_distance_computations += int((~fresh).sum())

    topm_ids = np.full(itopk, INDEX_MASK, dtype=np.uint32)
    topm_dists = np.full(itopk, np.inf)

    iteration = 0
    while iteration < max_iterations:
        iteration += 1
        # ① top-M update.
        _charge_sort(report, len(cand_ids), itopk)
        topm_ids, topm_dists = merge_topm(
            topm_ids, topm_dists, cand_ids, cand_dists, itopk
        )

        # ② pick un-parented parents.
        unparented = np.nonzero(
            ((topm_ids & PARENT_FLAG) == 0) & (topm_ids != INDEX_MASK)
        )[0]
        if len(unparented) == 0:
            if iteration >= min_iterations:
                break
            # Converged early but min_iterations demands more work: re-seed
            # with fresh random nodes, as the kernel's slack iterations do.
            extra = rng.integers(0, n, size=width, dtype=np.uint32)
            fresh = table.insert_unique(extra)
            cand_ids = extra
            cand_dists = np.full(width, np.inf)
            if fresh.any():
                cand_dists[fresh] = distances_to_query(
                    data, query, extra[fresh], metric=metric
                )
                report.distance_computations += int(fresh.sum())
                fresh_ids = [int(x) for x in extra[fresh]]
                report.recomputed_distances += sum(
                    1 for x in fresh_ids if x in ever_computed
                )
                ever_computed.update(fresh_ids)
            if filter_mask is not None:
                cand_dists[~filter_mask[extra.astype(np.int64)]] = np.inf
            report.skipped_distance_computations += int((~fresh).sum())
            continue
        parents_pos = unparented[:search_width]
        parent_nodes = (topm_ids[parents_pos] & INDEX_MASK).astype(np.int64)
        topm_ids[parents_pos] |= PARENT_FLAG

        # ② gather neighbor indices into the candidate list.
        cand_ids = graph.neighbors[parent_nodes].reshape(-1)
        report.candidate_gathers += len(cand_ids)

        # ③ compute distances for first-time nodes only.
        fresh = table.insert_unique(cand_ids)
        cand_dists = np.full(len(cand_ids), np.inf)
        if fresh.any():
            cand_dists[fresh] = distances_to_query(
                data, query, cand_ids[fresh], metric=metric
            )
            report.distance_computations += int(fresh.sum())
            fresh_ids = [int(x) for x in cand_ids[fresh]]
            report.recomputed_distances += sum(
                1 for x in fresh_ids if x in ever_computed
            )
            ever_computed.update(fresh_ids)
        if filter_mask is not None:
            cand_dists[~filter_mask[cand_ids.astype(np.int64)]] = np.inf
        report.skipped_distance_computations += int((~fresh).sum())

        if isinstance(table, ForgettableHashTable):
            table.maybe_reset(topm_ids & INDEX_MASK)

    report.iterations += iteration
    return topm_ids, topm_dists


def _collect_hash_counters(report: CostReport, table: StandardHashTable) -> None:
    report.hash_lookups += table.lookups
    report.hash_probes += table.probes
    report.hash_insertions += table.insertions
    report.hash_resets += table.resets


def _resolve_cta_per_query(config: SearchConfig) -> int:
    """Number of worker CTAs per query in multi-CTA mode.

    cuVS launches enough 32-wide workers to cover the requested internal
    top-M; we use the same rule with a floor of 2 (a single worker would
    just be a narrow single-CTA search).
    """
    if config.cta_per_query:
        return config.cta_per_query
    return max(2, (max(config.itopk, 32) + 31) // 32)


def _search_single_query_impl(
    data: np.ndarray,
    graph: FixedDegreeGraph,
    query: np.ndarray,
    k: int,
    config: SearchConfig,
    algo: str,
    rng: np.random.Generator,
    metric: str = "sqeuclidean",
    filter_mask: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, CostReport]:
    """Search one query with an explicitly chosen implementation.

    The caller-owned ``rng`` stream is consumed exactly as before the
    engine refactor (same draws, same order), so interleaved calls that
    share one generator keep their trajectories.
    """
    from repro.core.traversal import TraversalEngine

    engine = TraversalEngine(
        data, graph, metric=metric, precision=getattr(config, "precision", "fp32")
    )
    return engine.search_single(query, k, config, algo, rng, filter_mask=filter_mask)


def search_batch(
    data: np.ndarray,
    graph: FixedDegreeGraph,
    queries: np.ndarray,
    k: int,
    config: SearchConfig | None = None,
    metric: str = "sqeuclidean",
    num_sms: int = 108,
    filter_mask: np.ndarray | None = None,
) -> SearchResult:
    """Search a batch of queries (reference fidelity).

    Thin shim over :class:`repro.core.traversal.TraversalEngine` in
    ``mode="reference"``: the hash-faithful array-parallel backend, bit-
    exact against the historical per-query loop (ids, distances and every
    :class:`CostReport` counter).  The implementation (single- vs
    multi-CTA) follows the Fig. 7 rule unless ``config.algo`` pins one
    explicitly.

    ``filter_mask`` (length-N bool) enables filtered search: nodes whose
    entry is False are excluded from results (their computed distances
    are forced to +inf, like the production kernels do); use a larger
    ``itopk`` when the mask is very selective.
    """
    from repro.core.traversal import TraversalEngine

    config = config or SearchConfig()
    engine = TraversalEngine(
        data, graph, metric=metric, precision=getattr(config, "precision", "fp32")
    )
    return engine.search(
        queries,
        k,
        config=config,
        mode="reference",
        num_sms=num_sms,
        filter_mask=filter_mask,
    )


def __getattr__(name: str):
    """Deprecation shim: ``search_single_query`` lives on for one release.

    The per-query entry point became
    :meth:`repro.core.traversal.TraversalEngine.search_single`; batch
    callers should use :func:`search_batch` (or the engine directly),
    which amortizes slab setup across the whole batch.
    """
    if name == "search_single_query":
        import warnings

        warnings.warn(
            "search_single_query is deprecated; use "
            "repro.core.traversal.TraversalEngine.search_single (or "
            "search_batch for whole batches)",
            DeprecationWarning,
            stacklevel=2,
        )
        return _search_single_query_impl
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
