"""Vectorized random-initialization blocks for the lockstep fast path.

The reference search seeds every query's candidate list from its own
``np.random.default_rng([seed, query_index])`` stream so a query's result
never depends on its position in the batch (the CUDA kernels likewise
derive per-query Philox streams).  The fast path must draw the *same*
streams — the bitwise regression fixture pins them — but constructing a
``Generator`` per query made large-batch initialization a serial Python
loop that dominated auto-tuner sweeps.

:func:`random_init_block` produces bit-identical draws for the whole
batch with array arithmetic by emulating the exact NumPy pipeline:

* ``SeedSequence([seed, q]).generate_state(4, uint64)`` — the entropy
  pool mixing (hash/mix rounds with the published constants; the evolving
  hash constant is query-independent, so the rounds vectorize across the
  batch);
* PCG64 (XSL-RR 128/64, setseq) seeding and state advance — 128-bit LCG
  steps emulated on ``uint64`` hi/lo pairs;
* ``Generator.integers(0, n, dtype=uint32)`` — Lemire bounded rejection
  over the 32-bit half-draw stream (low half first, then high, exactly
  like ``pcg64_next32``'s buffer).

Acceptance of each 32-bit draw is a pure predicate of the draw value
(``leftover >= threshold``), so per-element rejection vectorizes: draw a
chunk for all rows, keep each row's first ``width`` accepted values, and
draw again for any row that ran short (states persist across chunks).

NumPy documents both the ``SeedSequence`` mixing and the PCG64 stream as
stable across releases; ``tests/test_search_internals.py`` additionally
cross-checks this module against per-query ``default_rng`` draws on
every run, and :func:`random_init_block` falls back to the reference
loop for inputs outside the fast path's envelope (negative/huge seeds,
``n`` beyond 32 bits).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "GeneratorRngStreams",
    "VectorRngStreams",
    "make_streams",
    "random_init_block",
]

_M32 = 0xFFFFFFFF
_U32 = np.uint64(_M32)

# SeedSequence mixing constants (numpy/random/bit_generator.pyx).
_INIT_A = 0x43B0D7E5
_MULT_A = 0x931E8875
_INIT_B = 0x8B51F9DD
_MULT_B = 0x58F38DED
_MIX_L = np.uint32(0xCA01F9DD)
_MIX_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)
_POOL_SIZE = 4

# PCG64 default multiplier (XSL-RR 128/64 setseq variant).
_PCG_MULT_HI = np.uint64(0x2360ED051FC65DA4)
_PCG_MULT_LO = np.uint64(0x4385DF649FCCF645)


def _ss_hash(value: np.ndarray, const: int) -> tuple[np.ndarray, int]:
    """One SeedSequence hash round; ``const`` evolves query-independently."""
    value = value ^ np.uint32(const)
    const = (const * _MULT_A) & _M32
    value = value * np.uint32(const)
    return value ^ (value >> _XSHIFT), const


def _ss_mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    r = (x * _MIX_L) - (y * _MIX_R)
    return r ^ (r >> _XSHIFT)


def _seed_words(seed: int) -> list[int]:
    """Little-endian 32-bit decomposition (SeedSequence entropy coercion)."""
    if seed == 0:
        return [0]
    words = []
    while seed:
        words.append(seed & _M32)
        seed >>= 32
    return words


def _generate_states(seed: int, seed_offset: int, batch: int) -> list[np.ndarray]:
    """``SeedSequence([seed, q]).generate_state(4, uint64)`` for the whole
    batch of ``q`` values: four ``(batch,)`` uint64 arrays."""
    q = np.arange(seed_offset, seed_offset + batch, dtype=np.uint64)
    entropy = [np.full(batch, w, dtype=np.uint32) for w in _seed_words(seed)]
    entropy.append(q.astype(np.uint32))
    n_words = len(entropy)

    pool = np.empty((_POOL_SIZE, batch), dtype=np.uint32)
    const = _INIT_A
    for i in range(_POOL_SIZE):
        value = entropy[i] if i < n_words else np.zeros(batch, dtype=np.uint32)
        pool[i], const = _ss_hash(value, const)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                hashed, const = _ss_hash(pool[i_src], const)
                pool[i_dst] = _ss_mix(pool[i_dst], hashed)
    for i_src in range(_POOL_SIZE, n_words):
        for i_dst in range(_POOL_SIZE):
            hashed, const = _ss_hash(entropy[i_src], const)
            pool[i_dst] = _ss_mix(pool[i_dst], hashed)

    out32 = np.empty((2 * _POOL_SIZE, batch), dtype=np.uint32)
    const = _INIT_B
    for i in range(2 * _POOL_SIZE):
        data = pool[i % _POOL_SIZE] ^ np.uint32(const)
        const = (const * _MULT_B) & _M32
        data = data * np.uint32(const)
        out32[i] = data ^ (data >> _XSHIFT)
    return [
        out32[2 * j].astype(np.uint64)
        | (out32[2 * j + 1].astype(np.uint64) << np.uint64(32))
        for j in range(_POOL_SIZE)
    ]


def _mul128(
    a_hi: np.ndarray, a_lo: np.ndarray, b_hi: np.uint64, b_lo: np.uint64
) -> tuple[np.ndarray, np.ndarray]:
    """128-bit multiply (mod 2^128) on uint64 hi/lo pairs."""
    a_ll = a_lo & _U32
    a_lh = a_lo >> np.uint64(32)
    b_ll = b_lo & _U32
    b_lh = b_lo >> np.uint64(32)
    ll = a_ll * b_ll
    lh = a_ll * b_lh
    hl = a_lh * b_ll
    cross = (ll >> np.uint64(32)) + (lh & _U32) + (hl & _U32)
    lo = (ll & _U32) | ((cross & _U32) << np.uint64(32))
    mul_hi = (a_lh * b_lh) + (lh >> np.uint64(32)) + (hl >> np.uint64(32)) + (
        cross >> np.uint64(32)
    )
    hi = mul_hi + a_hi * b_lo + a_lo * b_hi
    return hi, lo


def _add128(
    a_hi: np.ndarray, a_lo: np.ndarray, b_hi: np.ndarray, b_lo: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    lo = a_lo + b_lo
    carry = (lo < a_lo).astype(np.uint64)
    return a_hi + b_hi + carry, lo


class _VectorPCG64:
    """A batch of independent PCG64 streams advanced in lockstep."""

    def __init__(self, seed: int, seed_offset: int, batch: int):
        w0, w1, w2, w3 = _generate_states(seed, seed_offset, batch)
        # pcg_setseq_128_srandom_r: inc = (initseq << 1) | 1, then
        # step; state += initstate; step.
        self._inc_hi = (w2 << np.uint64(1)) | (w3 >> np.uint64(63))
        self._inc_lo = (w3 << np.uint64(1)) | np.uint64(1)
        hi = np.zeros(batch, dtype=np.uint64)
        lo = np.zeros(batch, dtype=np.uint64)
        hi, lo = self._step(hi, lo)
        hi, lo = _add128(hi, lo, w0, w1)
        self._hi, self._lo = self._step(hi, lo)

    def _step(self, hi: np.ndarray, lo: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hi, lo = _mul128(hi, lo, _PCG_MULT_HI, _PCG_MULT_LO)
        return _add128(hi, lo, self._inc_hi, self._inc_lo)

    def next_raw32(self, count64: int) -> np.ndarray:
        """``(batch, 2 * count64)`` uint32 draws in ``pcg64_next32`` order
        (low half of each 64-bit output first, then the buffered high)."""
        out = np.empty((self._hi.shape[0], 2 * count64), dtype=np.uint32)
        for j in range(count64):
            self._hi, self._lo = self._step(self._hi, self._lo)
            word = self._hi ^ self._lo
            rot = self._hi >> np.uint64(58)
            word = (word >> rot) | (word << ((np.uint64(64) - rot) & np.uint64(63)))
            out[:, 2 * j] = (word & _U32).astype(np.uint32)
            out[:, 2 * j + 1] = (word >> np.uint64(32)).astype(np.uint32)
        return out

    def select(self, keep: np.ndarray) -> None:
        """Drop the streams of rows where ``keep`` is False (in place)."""
        self._hi = self._hi[keep]
        self._lo = self._lo[keep]
        self._inc_hi = self._inc_hi[keep]
        self._inc_lo = self._inc_lo[keep]


class GeneratorRngStreams:
    """Per-row ``np.random.Generator`` streams (the compatibility path).

    Used when the caller supplies explicit generators (``search_single_query``)
    or when the seed falls outside :class:`VectorRngStreams`'s envelope.  The
    per-row loop here is the *cold* fallback; the traversal hot loop itself
    stays array-parallel.
    """

    def __init__(self, rngs):
        self._rngs = list(rngs)

    def __len__(self) -> int:
        return len(self._rngs)

    def draw(self, n: int, width: int, mask: np.ndarray | None = None) -> np.ndarray:
        """``(rows, width)`` uint32 draws continuing each row's stream.

        With ``mask``, only rows where it is True draw (and consume their
        stream); the other rows' output is zeros and their state is
        untouched.
        """
        out = np.zeros((len(self._rngs), width), dtype=np.uint32)
        for i, rng in enumerate(self._rngs):
            if mask is None or mask[i]:
                out[i] = rng.integers(0, n, size=width, dtype=np.uint32)
        return out

    def select(self, keep: np.ndarray) -> None:
        self._rngs = [rng for rng, live in zip(self._rngs, keep) if live]


class VectorRngStreams:
    """Stateful per-row bounded-draw streams, advanced in lockstep.

    Unlike :func:`random_init_block` (one draw per stream), this keeps the
    raw 32-bit word stream of every row *buffered* across calls, so
    ``draw`` is bit-identical to calling ``Generator.integers(0, n, width,
    uint32)`` repeatedly on per-row ``default_rng([seed, row])`` streams —
    including the leftover high half-word the PCG64 bit generator carries
    between calls.  That is exactly what the multi-CTA mapping needs: its
    sequential worker CTAs share one per-query stream, drawing seeds (and
    ``min_iterations`` re-seeds) at row-dependent paces.
    """

    def __init__(self, seed: int, seed_offset: int, batch: int):
        self._gen = _VectorPCG64(int(seed), int(seed_offset), batch)
        self._rows = batch
        self._buf = np.empty((batch, 0), dtype=np.uint32)
        self._avail = np.zeros(batch, dtype=np.int64)

    def __len__(self) -> int:
        return self._rows

    def _append(self, words: np.ndarray) -> None:
        fresh = words.shape[1]
        need = int(self._avail.max()) + fresh if self._rows else fresh
        if need > self._buf.shape[1]:
            grown = np.zeros((self._rows, need), dtype=np.uint32)
            grown[:, : self._buf.shape[1]] = self._buf
            self._buf = grown
        cols = self._avail[:, None] + np.arange(fresh, dtype=np.int64)
        self._buf[np.arange(self._rows)[:, None], cols] = words
        self._avail += fresh

    def draw(self, n: int, width: int, mask: np.ndarray | None = None) -> np.ndarray:
        """``(rows, width)`` uint32 draws continuing each row's stream.

        With ``mask``, only rows where it is True draw (and consume their
        buffered words); the other rows' output is zeros and their stream
        position is untouched — rows advance at independent paces, exactly
        like per-row Generators would.
        """
        if width < 1 or self._rows == 0:
            return np.empty((self._rows, max(width, 0)), dtype=np.uint32)
        if mask is not None and not mask.any():
            return np.zeros((self._rows, width), dtype=np.uint32)
        if n == 1:
            # numpy's bounded path short-circuits a zero range without
            # consuming any raw words.
            return np.zeros((self._rows, width), dtype=np.uint32)
        n64 = np.uint64(n)
        threshold = np.uint64((2**32 - n) % n)
        accept_rate = 1.0 - int(threshold) / 2.0**32
        while True:
            cols = np.arange(self._buf.shape[1], dtype=np.int64)
            valid = cols < self._avail[:, None]
            product = self._buf.astype(np.uint64) * n64
            accept = ((product & _U32) >= threshold) & valid
            counts = accept.sum(axis=1)
            need = counts if mask is None else counts[mask]
            if (need >= width).all():
                break
            deficit = int(width - need.min())
            self._append(
                self._gen.next_raw32(
                    max(2, int(np.ceil(deficit / (2.0 * accept_rate))) + 2)
                )
            )
        # Stable argsort floats the accepted positions to the front in
        # stream order; the width-th accepted word is the last consumed.
        pos = np.argsort(~accept, axis=1, kind="stable")[:, :width]
        rows = np.arange(self._rows)[:, None]
        out = (product >> np.uint64(32))[rows, pos].astype(np.uint32)
        consumed = pos[:, -1] + 1
        if mask is not None:
            out = np.where(mask[:, None], out, np.uint32(0))
            consumed = np.where(mask, consumed, 0)
        shift = consumed[:, None] + np.arange(self._buf.shape[1], dtype=np.int64)
        np.minimum(shift, self._buf.shape[1] - 1, out=shift)
        self._buf = np.take_along_axis(self._buf, shift, axis=1)
        self._avail -= consumed
        return out

    def select(self, keep: np.ndarray) -> None:
        """Drop finished rows' streams (dead-query compaction)."""
        self._gen.select(keep)
        self._buf = self._buf[keep]
        self._avail = self._avail[keep]
        self._rows = int(self._buf.shape[0])


def make_streams(seed, seed_offset: int, batch: int, n: int):
    """Per-row ``default_rng([seed, seed_offset + i])`` streams for a block.

    Returns :class:`VectorRngStreams` when the inputs fit the vectorized
    envelope (the common case), else :class:`GeneratorRngStreams` drawing
    from real per-row Generators — both produce bit-identical draws.
    """
    in_envelope = (
        isinstance(seed, (int, np.integer))
        and int(seed) >= 0
        and 1 <= n <= _M32
        and seed_offset >= 0
        and seed_offset + batch <= _M32 + 1
    )
    if in_envelope:
        return VectorRngStreams(int(seed), int(seed_offset), batch)
    return GeneratorRngStreams(
        np.random.default_rng([seed, seed_offset + i]) for i in range(batch)
    )


def _reference_init_block(
    seed: int, seed_offset: int, batch: int, n: int, width: int
) -> np.ndarray:
    """The per-query Generator loop the vectorized path must reproduce."""
    out = np.empty((batch, width), dtype=np.uint32)
    for i in range(batch):
        rng = np.random.default_rng([seed, seed_offset + i])
        out[i] = rng.integers(0, n, size=width, dtype=np.uint32)
    return out


def random_init_block(
    seed: int, seed_offset: int, batch: int, n: int, width: int
) -> np.ndarray:
    """``(batch, width)`` uint32 draws, row ``i`` bit-identical to
    ``default_rng([seed, seed_offset + i]).integers(0, n, width, uint32)``.
    """
    if batch < 1 or width < 1:
        return np.empty((max(batch, 0), max(width, 0)), dtype=np.uint32)
    in_envelope = (
        isinstance(seed, (int, np.integer))
        and int(seed) >= 0
        and 1 <= n <= _M32
        and seed_offset >= 0
        and seed_offset + batch <= _M32 + 1
    )
    if not in_envelope:
        return _reference_init_block(seed, seed_offset, batch, n, width)
    if n == 1:
        # numpy's bounded path short-circuits a zero range without
        # consuming draws; the streams are init-only so parity holds.
        return np.zeros((batch, width), dtype=np.uint32)

    gen = _VectorPCG64(int(seed), int(seed_offset), batch)
    # Lemire bounded rejection: out = (draw * n) >> 32, accepted iff the
    # low 32 bits of the product clear the bias threshold.
    n64 = np.uint64(n)
    threshold = np.uint64((2**32 - n) % n)
    accept_rate = 1.0 - int(threshold) / 2.0**32
    out = np.zeros((batch, width), dtype=np.uint32)
    filled = np.zeros(batch, dtype=np.int64)
    rows = np.arange(batch)
    while True:
        deficit = int(width - filled.min())
        count64 = max(2, int(np.ceil(deficit / (2.0 * accept_rate))) + 2)
        product = gen.next_raw32(count64).astype(np.uint64) * n64
        accept = (product & _U32) >= threshold
        values = (product >> np.uint64(32)).astype(np.uint32)
        position = np.cumsum(accept, axis=1) - 1 + filled[:, None]
        write = accept & (position < width)
        out[np.broadcast_to(rows[:, None], write.shape)[write], position[write]] = (
            values[write]
        )
        filled = np.minimum(filled + accept.sum(axis=1), width)
        if (filled >= width).all():
            return out
