"""Multi-GPU sharding (Sec. IV-C2 / V-E).

For datasets beyond one device's memory the paper recommends "a simple
multi-GPU sharding technique ... where each GPU is assigned to process
one sub-graph independently".  :class:`ShardedCagraIndex` implements it:

* the dataset is split round-robin into ``num_shards`` sub-datasets;
* each shard builds an independent CAGRA index (exactly GGNN's
  construction trick, which the paper cites for this);
* a search runs on every shard (in parallel, one GPU each) and the
  per-shard top-k lists are merged by distance.

Because every shard search is a full CAGRA search over a subset, recall
is at least that of a single index of the same total size searched with
the same per-shard budget; wall time is the slowest shard plus a merge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import GraphBuildConfig, SearchConfig
from repro.core.index import CagraIndex
from repro.core.search import CostReport, SearchResult

__all__ = ["ShardedCagraIndex", "ShardedSearchResult"]


@dataclass
class ShardedSearchResult:
    """Merged result of a sharded search.

    Attributes:
        indices: ``(batch, k)`` *global* dataset ids.
        distances: matching distances.
        shard_reports: one :class:`CostReport` per shard — the cost model
            prices each on its own GPU; wall time is their max.
    """

    indices: np.ndarray
    distances: np.ndarray
    shard_reports: list[CostReport]


class ShardedCagraIndex:
    """CAGRA index sharded across simulated GPUs."""

    def __init__(self, shards: list[CagraIndex], assignments: list[np.ndarray]):
        if not shards:
            raise ValueError("need at least one shard")
        if len(shards) != len(assignments):
            raise ValueError("one assignment array per shard required")
        self.shards = shards
        #: assignments[s][i] = global id of shard s's local row i.
        self.assignments = [np.asarray(a, dtype=np.int64) for a in assignments]
        for shard, ids in zip(self.shards, self.assignments):
            if shard.size != len(ids):
                raise ValueError("assignment length must match shard size")

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: np.ndarray,
        num_shards: int,
        config: GraphBuildConfig | None = None,
        dataset_dtype: str = "float32",
    ) -> "ShardedCagraIndex":
        """Split ``dataset`` round-robin and build one index per shard."""
        dataset = np.asarray(dataset)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        n = dataset.shape[0]
        if n < 2 * num_shards:
            raise ValueError("each shard needs at least 2 vectors")
        config = config or GraphBuildConfig()
        shards = []
        assignments = []
        for s in range(num_shards):
            ids = np.arange(s, n, num_shards, dtype=np.int64)
            # Shard degree cannot exceed the shard population.
            degree = min(config.graph_degree, max(2, (len(ids) - 1) // 2 * 2))
            shard_config = GraphBuildConfig(
                graph_degree=degree,
                intermediate_degree=0,
                reordering=config.reordering,
                add_reverse_edges=config.add_reverse_edges,
                nn_descent_iterations=config.nn_descent_iterations,
                nn_descent_sample_rate=config.nn_descent_sample_rate,
                nn_descent_termination_delta=config.nn_descent_termination_delta,
                metric=config.metric,
                seed=config.seed + s,
            )
            shards.append(
                CagraIndex.build(dataset[ids], shard_config, dataset_dtype=dataset_dtype)
            )
            assignments.append(ids)
        return cls(shards, assignments)

    # ------------------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        config: SearchConfig | None = None,
        num_sms: int = 108,
    ) -> ShardedSearchResult:
        """Search every shard and merge per-query top-k by distance."""
        queries = np.atleast_2d(queries)
        batch = queries.shape[0]
        per_shard: list[SearchResult] = [
            shard.search(queries, k, config=config, num_sms=num_sms)
            for shard in self.shards
        ]

        all_ids = np.concatenate(
            [self.assignments[s][result.indices.astype(np.int64)]
             for s, result in enumerate(per_shard)],
            axis=1,
        )
        all_dists = np.concatenate([r.distances for r in per_shard], axis=1)
        order = np.argsort(all_dists, axis=1, kind="stable")[:, :k]
        return ShardedSearchResult(
            indices=np.take_along_axis(all_ids, order, axis=1).astype(np.uint32),
            distances=np.take_along_axis(all_dists, order, axis=1),
            shard_reports=[r.report for r in per_shard],
        )

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialize all shards + assignments to one ``.npz`` file."""
        payload: dict[str, np.ndarray] = {
            "num_shards": np.array(self.num_shards),
            "metric": np.array(self.shards[0].metric),
        }
        for s, (shard, ids) in enumerate(zip(self.shards, self.assignments)):
            payload[f"dataset_{s}"] = shard.dataset
            payload[f"neighbors_{s}"] = shard.graph.neighbors
            payload[f"assignment_{s}"] = ids
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str) -> "ShardedCagraIndex":
        """Load an index written by :meth:`save`."""
        from repro.core.graph import FixedDegreeGraph

        with np.load(path, allow_pickle=False) as archive:
            num_shards = int(archive["num_shards"])
            metric = str(archive["metric"])
            shards = []
            assignments = []
            for s in range(num_shards):
                shards.append(
                    CagraIndex(
                        archive[f"dataset_{s}"],
                        FixedDegreeGraph(archive[f"neighbors_{s}"]),
                        metric=metric,
                    )
                )
                assignments.append(archive[f"assignment_{s}"])
        return cls(shards, assignments)

    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def size(self) -> int:
        return sum(shard.size for shard in self.shards)

    def max_shard_memory_bytes(self) -> int:
        """Per-GPU memory requirement (the quantity sharding bounds)."""
        return max(shard.memory_bytes() for shard in self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedCagraIndex(num_shards={self.num_shards}, size={self.size})"
        )
