"""Multi-GPU sharding (Sec. IV-C2 / V-E).

For datasets beyond one device's memory the paper recommends "a simple
multi-GPU sharding technique ... where each GPU is assigned to process
one sub-graph independently".  :class:`ShardedCagraIndex` implements it:

* the dataset is split round-robin into ``num_shards`` sub-datasets;
* each shard builds an independent CAGRA index (exactly GGNN's
  construction trick, which the paper cites for this);
* a search runs on every shard and the per-shard top-k lists are merged
  by distance, with ``INDEX_MASK`` unfilled slots masked out *before* the
  local→global id gather (an unfilled slot is a sentinel, not a local
  row) and propagated as trailing padding in the merged output.

Shard builds and searches are genuinely concurrent: both fan out through
:mod:`repro.parallel`'s :class:`~repro.parallel.executor.ShardExecutor`
(process pool + shared-memory dataset hand-off by default on multi-core
POSIX hosts; thread/serial fallbacks elsewhere), the software analogue of
"one GPU per sub-graph".  Results are bitwise identical to the serial
loop on every backend — see ``docs/parallel.md``.

Because every shard search is a full CAGRA search over a subset, recall
is at least that of a single index of the same total size searched with
the same per-shard budget; wall time is the slowest shard plus a merge.

Failure semantics (``docs/resilience.md``): each shard search is an
independent :class:`~repro.parallel.executor.TaskOutcome`, so one shard
dying (worker crash, watchdog timeout, retries exhausted) need not sink
the whole query.  ``on_shard_failure="raise"`` (default) re-raises the
first shard error; ``"partial"`` merges the survivors — failed shards
contribute only sentinel slots — and reports ``degraded`` /
``failed_shards`` metadata, as long as at least ``min_shard_quorum``
shards answered (otherwise :class:`ShardQuorumError`).
"""

from __future__ import annotations

import time
import warnings
import weakref

import numpy as np

from repro.api.results import SearchResult as AnnSearchResult
from repro.core.config import GraphBuildConfig, SearchConfig
from repro.core.graph import INDEX_MASK
from repro.core.index import CagraIndex
from repro.core.search import CostReport, SearchResult
from repro.parallel.config import ParallelConfig

# ShardedSearchResult is a module-__getattr__ deprecation alias for
# repro.api.SearchResult, not a module-level definition.
__all__ = ["ShardQuorumError", "ShardedCagraIndex", "ShardedSearchResult"]  # repro-lint: disable=RL005 — deprecation alias via module __getattr__

#: Accepted ``on_shard_failure`` policies.
_FAILURE_MODES = ("raise", "partial")


class ShardQuorumError(RuntimeError):
    """Too few shards answered to satisfy ``min_shard_quorum``.

    Raised even under ``on_shard_failure="partial"``: a degraded answer is
    only useful while most of the index is still reachable, and the quorum
    knob is where the caller draws that line.
    """


def __getattr__(name: str):
    """Deprecation shim: ``ShardedSearchResult`` became the unified
    :class:`repro.api.SearchResult` (same fields plus ``counters``)."""
    if name == "ShardedSearchResult":
        warnings.warn(
            "ShardedSearchResult is deprecated; sharded searches now return "
            "repro.api.SearchResult (same shard_reports/shard_seconds/"
            "degraded/failed_shards/skipped_shards fields)",
            DeprecationWarning,
            stacklevel=2,
        )
        return AnnSearchResult
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class _ShardRuntime:
    """Pool + shared-memory state owned by one sharded index.

    Kept separate from the index so a ``weakref.finalize`` can release
    OS resources (worker processes, ``/dev/shm`` segments) when the index
    is garbage collected without resurrecting it.
    """

    def __init__(self):
        self.executor = None
        self.handle = None

    def close(self) -> None:
        if self.executor is not None:
            self.executor.close()
            self.executor = None
        if self.handle is not None:
            self.handle.close()
            self.handle = None


class ShardedCagraIndex:
    """CAGRA index sharded across simulated GPUs (worker processes)."""

    def __init__(
        self,
        shards: list[CagraIndex],
        assignments: list[np.ndarray],
        parallel: ParallelConfig | None = None,
    ):
        if not shards:
            raise ValueError("need at least one shard")
        if len(shards) != len(assignments):
            raise ValueError("one assignment array per shard required")
        self.shards = shards
        #: assignments[s][i] = global id of shard s's local row i.
        self.assignments = [np.asarray(a, dtype=np.int64) for a in assignments]
        for shard, ids in zip(self.shards, self.assignments):
            if shard.size != len(ids):
                raise ValueError("assignment length must match shard size")
        #: Default execution policy for this index's searches.
        self.parallel = parallel or ParallelConfig()
        self._runtime = _ShardRuntime()
        self._finalizer = weakref.finalize(self, _ShardRuntime.close, self._runtime)

    # ------------------------------------------------------------------
    # execution plumbing
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool and shared-memory segments (idempotent).

        Also runs automatically when the index is garbage collected or
        the interpreter exits; call it explicitly in long-lived processes
        that churn through many indexes.
        """
        self._runtime.close()

    def _executor(self, parallel: ParallelConfig):
        from repro.parallel.executor import ShardExecutor

        if parallel is not self.parallel:
            # Per-call override: a throwaway executor, closed by caller.
            return ShardExecutor.from_config(parallel, self.num_shards), True
        if self._runtime.executor is None:
            self._runtime.executor = ShardExecutor.from_config(
                parallel, self.num_shards
            )
        return self._runtime.executor, False

    def _shared_handle(self, executor):
        from repro.parallel.shards import SharedIndexHandle

        if executor.backend != "process":
            return None
        if self._runtime.handle is None:
            self._runtime.handle = SharedIndexHandle(self.shards)
        return self._runtime.handle

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        dataset: np.ndarray,
        num_shards: int,
        config: GraphBuildConfig | None = None,
        dataset_dtype: str = "float32",
        parallel: ParallelConfig | None = None,
    ) -> "ShardedCagraIndex":
        """Split ``dataset`` round-robin and build one index per shard.

        Shard builds run concurrently on the :class:`ParallelConfig`'s
        backend (process pool by default on multi-core POSIX hosts); each
        shard's build is seeded by shard number, so the resulting graphs
        are bitwise identical to a serial build.
        """
        from repro.parallel.executor import ShardExecutor
        from repro.parallel.shards import build_shards, plan_shards
        from repro.resilience import resolve_fault_plan

        dataset = np.asarray(dataset)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        n = dataset.shape[0]
        if n < 2 * num_shards:
            raise ValueError("each shard needs at least 2 vectors")
        config = config or GraphBuildConfig()
        parallel = parallel or ParallelConfig()
        plans = plan_shards(n, num_shards, config)
        with ShardExecutor.from_config(parallel, num_shards) as executor:
            shards = build_shards(
                dataset, plans, dataset_dtype, executor,
                fault=resolve_fault_plan(parallel.fault_plan),
            )
        return cls(shards, [plan.ids for plan in plans], parallel=parallel)

    # ------------------------------------------------------------------
    def _shard_filter_masks(
        self, filter_mask: np.ndarray | None
    ) -> tuple[list[np.ndarray | None], list[bool]]:
        """Slice a global filter mask per shard; flag fully-excluded shards."""
        if filter_mask is None:
            return [None] * self.num_shards, [False] * self.num_shards
        filter_mask = np.asarray(filter_mask, dtype=bool)
        if filter_mask.shape != (self.size,):
            raise ValueError("filter_mask must have one entry per dataset row")
        if not filter_mask.any():
            raise ValueError("filter_mask excludes every node")
        masks: list[np.ndarray | None] = []
        empty: list[bool] = []
        for ids in self.assignments:
            local = filter_mask[ids]
            if local.all():
                masks.append(None)  # no-op mask: skip the filtered code path
                empty.append(False)
            elif local.any():
                masks.append(local)
                empty.append(False)
            else:
                # Every row of this shard is excluded — searching it would
                # be rejected outright, so it contributes nothing instead.
                masks.append(None)
                empty.append(True)
        return masks, empty

    @staticmethod
    def _empty_result(batch: int, k: int, algo: str) -> SearchResult:
        return SearchResult(
            indices=np.full((batch, k), INDEX_MASK, dtype=np.uint32),
            distances=np.full((batch, k), np.inf),
            report=CostReport(algo=algo, batch_size=batch, kernel_launches=0),
        )

    def _run_shard_searches(
        self,
        queries: np.ndarray,
        k: int,
        config: SearchConfig | None,
        num_sms: int,
        fast: bool,
        filter_mask: np.ndarray | None,
        parallel: ParallelConfig | None,
        on_shard_failure: str,
        min_shard_quorum: int,
        skip_shards,
    ) -> tuple[list[tuple[SearchResult, float]], list[int], list[int]]:
        """Fan a search out and fold failures per ``on_shard_failure``.

        Returns ``(per_shard, failed, skipped)`` where ``per_shard`` holds
        one ``(SearchResult, seconds)`` per shard — failed, skipped, and
        filter-excluded shards contribute an all-sentinel result that the
        merge sorts to the tail.
        """
        from repro.parallel.shards import search_shards
        from repro.resilience import resolve_fault_plan

        if on_shard_failure not in _FAILURE_MODES:
            raise ValueError(
                f"on_shard_failure must be one of {_FAILURE_MODES}, "
                f"got {on_shard_failure!r}"
            )
        if min_shard_quorum < 1:
            raise ValueError("min_shard_quorum must be >= 1")
        skipped = sorted(set(int(s) for s in skip_shards))
        for s in skipped:
            if not 0 <= s < self.num_shards:
                raise ValueError(f"skip_shards entry {s} out of range")
        if len(skipped) == self.num_shards:
            raise ShardQuorumError(
                f"all {self.num_shards} shard(s) skipped; nothing to search"
            )
        active = parallel or self.parallel
        masks, excluded = self._shard_filter_masks(filter_mask)
        live = [
            s
            for s in range(self.num_shards)
            if not excluded[s] and s not in skipped
        ]
        executor, throwaway = self._executor(active)
        try:
            handle = None
            if not throwaway:
                handle = self._shared_handle(executor)
            outcomes = search_shards(
                [self.shards[s] for s in live],
                queries,
                k,
                config,
                num_sms,
                executor,
                fast=fast,
                filter_masks=[masks[s] for s in live],
                handle=handle,
                fault=resolve_fault_plan(active.fault_plan),
                shard_ids=live,
            )
        finally:
            if throwaway:
                executor.close()
        failed: list[int] = []
        by_shard: dict[int, tuple[SearchResult, float]] = {}
        for s, outcome in zip(live, outcomes):
            if outcome.ok:
                by_shard[s] = outcome.value
            elif on_shard_failure == "raise":
                raise outcome.error
            else:
                failed.append(s)
        # Filter exclusion alone is never a quorum problem (the caller
        # asked for it); failures and breaker skips are.
        if (failed or skipped) and len(by_shard) < min_shard_quorum:
            raise ShardQuorumError(
                f"only {len(by_shard)} of {self.num_shards} shard(s) "
                f"answered (failed={failed}, skipped={skipped}); "
                f"min_shard_quorum={min_shard_quorum}"
            )
        batch = queries.shape[0]
        algo = next(
            (r.report.algo for r, _ in by_shard.values()), "single_cta"
        )
        per_shard = [
            by_shard.get(s, (self._empty_result(batch, k, algo), 0.0))
            for s in range(self.num_shards)
        ]
        return per_shard, failed, skipped

    def _merge(
        self,
        per_shard: list[tuple[SearchResult, float]],
        k: int,
        failed: list[int] | None = None,
        skipped: list[int] | None = None,
    ) -> AnnSearchResult:
        """Merge per-shard top-k into a global top-k ``repro.api.SearchResult``.

        ``INDEX_MASK`` entries and non-finite distances mark unfilled or
        filtered-out slots (see :class:`~repro.core.search.SearchResult`);
        gathering them through the assignment array would index a
        shard-sized array with id ``2**31 - 1``, so they are masked to
        ``(INDEX_MASK, +inf)`` first and therefore sort to the tail of
        the merged list.
        """
        id_blocks = []
        dist_blocks = []
        for s, (result, _seconds) in enumerate(per_shard):
            unfilled = (result.indices == INDEX_MASK) | ~np.isfinite(
                result.distances
            )
            local = np.where(unfilled, 0, result.indices.astype(np.int64))
            ids = self.assignments[s][local].astype(np.uint32)
            id_blocks.append(np.where(unfilled, INDEX_MASK, ids))
            dist_blocks.append(np.where(unfilled, np.inf, result.distances))
        all_ids = np.concatenate(id_blocks, axis=1)
        all_dists = np.concatenate(dist_blocks, axis=1)
        order = np.argsort(all_dists, axis=1, kind="stable")[:, :k]
        failed = list(failed or [])
        skipped = list(skipped or [])
        reports = [result.report for result, _ in per_shard]
        counters: dict = {}
        for report in reports:
            for key, value in report.as_dict().items():
                if isinstance(value, (bool, str)):
                    continue
                counters[key] = counters.get(key, 0) + value
        # Whole-index identity counters, not per-shard sums.
        counters["algo"] = reports[0].algo
        counters["batch_size"] = reports[0].batch_size
        return AnnSearchResult(
            indices=np.take_along_axis(all_ids, order, axis=1),
            distances=np.take_along_axis(all_dists, order, axis=1),
            counters=counters,
            shard_reports=reports,
            shard_seconds=[seconds for _, seconds in per_shard],
            degraded=bool(failed or skipped),
            failed_shards=failed,
            skipped_shards=skipped,
        )

    def _timed_merge(
        self,
        per_shard: list[tuple[SearchResult, float]],
        k: int,
        failed: list[int],
        skipped: list[int],
        on_stage,
    ) -> AnnSearchResult:
        """:meth:`_merge` plus the unified instrumentation events."""
        if on_stage is None:
            return self._merge(per_shard, k, failed, skipped)
        dead = set(failed) | set(skipped)
        for s, (result, seconds) in enumerate(per_shard):
            if s not in dead:
                on_stage(f"shard.{s}.search", seconds, result.report.as_dict())
        started = time.perf_counter()
        merged = self._merge(per_shard, k, failed, skipped)
        on_stage(
            "shard.merge",
            time.perf_counter() - started,
            {"num_shards": self.num_shards, "failed": len(failed),
             "skipped": len(skipped)},
        )
        return merged

    def search(
        self,
        queries: np.ndarray,
        k: int = 10,
        config: SearchConfig | None = None,
        num_sms: int = 108,
        filter_mask: np.ndarray | None = None,
        parallel: ParallelConfig | None = None,
        on_shard_failure: str = "raise",
        min_shard_quorum: int = 1,
        skip_shards=(),
        on_stage=None,
    ) -> AnnSearchResult:
        """Search every shard and merge per-query top-k by distance.

        Shard searches run concurrently on the index's worker pool
        (override per call with ``parallel``).  ``filter_mask`` is a
        *global* length-N bool mask; shards whose rows are all excluded
        are skipped.  Unfilled slots surface as trailing ``INDEX_MASK`` /
        ``inf`` entries, never as bogus global ids.

        ``on_shard_failure="partial"`` merges surviving shards when some
        fail (after the executor's retries), reporting them in
        ``failed_shards`` and setting ``degraded``; fewer than
        ``min_shard_quorum`` survivors raises :class:`ShardQuorumError`.
        ``skip_shards`` excludes shards up front (a serving layer's open
        circuit breakers) — they count against the quorum too.
        ``on_stage(name, seconds, counters)`` receives one
        ``shard.<s>.search`` event per answering shard plus a final
        ``shard.merge`` event (see :mod:`repro.api`).
        """
        queries = np.atleast_2d(queries)
        per_shard, failed, skipped = self._run_shard_searches(
            queries, k, config, num_sms, False, filter_mask, parallel,
            on_shard_failure, min_shard_quorum, skip_shards,
        )
        return self._timed_merge(per_shard, k, failed, skipped, on_stage)

    def search_fast(
        self,
        queries: np.ndarray,
        k: int = 10,
        config: SearchConfig | None = None,
        filter_mask: np.ndarray | None = None,
        parallel: ParallelConfig | None = None,
        on_shard_failure: str = "raise",
        min_shard_quorum: int = 1,
        skip_shards=(),
        on_stage=None,
    ) -> AnnSearchResult:
        """Vectorized per-shard :meth:`CagraIndex.search_fast` + merge.

        The batch-throughput path (and what :class:`repro.serve.CagraServer`
        uses for coalesced batches when serving a sharded index).  Failure
        handling matches :meth:`search` (``on_shard_failure`` /
        ``min_shard_quorum`` / ``skip_shards``), as does the ``on_stage``
        instrumentation hook.
        """
        queries = np.atleast_2d(queries)
        per_shard, failed, skipped = self._run_shard_searches(
            queries, k, config, 108, True, filter_mask, parallel,
            on_shard_failure, min_shard_quorum, skip_shards,
        )
        return self._timed_merge(per_shard, k, failed, skipped, on_stage)

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialize all shards + assignments to one ``.npz`` file."""
        payload: dict[str, np.ndarray] = {
            "num_shards": np.array(self.num_shards),
            "metric": np.array(self.shards[0].metric),
        }
        for s, (shard, ids) in enumerate(zip(self.shards, self.assignments)):
            payload[f"dataset_{s}"] = shard.dataset
            payload[f"neighbors_{s}"] = shard.graph.neighbors
            payload[f"assignment_{s}"] = ids
        np.savez_compressed(path, **payload)

    @classmethod
    def load(
        cls, path: str, parallel: ParallelConfig | None = None
    ) -> "ShardedCagraIndex":
        """Load an index written by :meth:`save`."""
        from repro.core.graph import FixedDegreeGraph

        with np.load(path, allow_pickle=False) as archive:
            num_shards = int(archive["num_shards"])
            metric = str(archive["metric"])
            shards = []
            assignments = []
            for s in range(num_shards):
                shards.append(
                    CagraIndex(
                        archive[f"dataset_{s}"],
                        FixedDegreeGraph(archive[f"neighbors_{s}"]),
                        metric=metric,
                    )
                )
                assignments.append(archive[f"assignment_{s}"])
        return cls(shards, assignments, parallel=parallel)

    # ------------------------------------------------------------------
    @property
    def executor_stats(self) -> dict | None:
        """Retry/recycle counters of the index's persistent executor.

        ``None`` until the first search on the persistent pool; per-call
        ``parallel`` overrides use throwaway executors whose stats are
        not retained.
        """
        if self._runtime.executor is None:
            return None
        return self._runtime.executor.stats.as_dict()

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def size(self) -> int:
        return sum(shard.size for shard in self.shards)

    @property
    def dim(self) -> int:
        return self.shards[0].dim

    @property
    def metric(self) -> str:
        return self.shards[0].metric

    @property
    def dataset(self) -> np.ndarray:
        """The global dataset reassembled in original row order.

        Materialized on demand (one copy); lets recall/ground-truth
        tooling and :class:`repro.serve.CagraServer` treat sharded and
        monolithic indexes uniformly.
        """
        out = np.empty(
            (self.size, self.dim), dtype=self.shards[0].dataset.dtype
        )
        for shard, ids in zip(self.shards, self.assignments):
            out[ids] = shard.dataset
        return out

    def max_shard_memory_bytes(self) -> int:
        """Per-GPU memory requirement (the quantity sharding bounds)."""
        return max(shard.memory_bytes() for shard in self.shards)

    def memory_bytes(self) -> int:
        """Total footprint across all shards."""
        return sum(shard.memory_bytes() for shard in self.shards)

    def __repr__(self) -> str:
        return (
            f"ShardedCagraIndex(num_shards={self.num_shards}, size={self.size})"
        )
