"""Quality metrics: recall, strong connected components, 2-hop node counts.

These are the three quantities the paper evaluates graphs with:

* **recall@k** (Eq. 2): overlap between approximate and exact top-k sets.
* **strong CC count** (Sec. III-A property 1): number of strongly connected
  components of the directed graph; fewer is better (1 = every node can
  reach every other node).
* **average 2-hop node count** (Sec. III-A property 2): how many distinct
  nodes are reachable within two traversals from a node, averaged over
  nodes; bounded by ``d + d^2``.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import FixedDegreeGraph

__all__ = [
    "recall",
    "recall_per_query",
    "strong_connected_components",
    "weak_connected_components",
    "average_two_hop_count",
    "two_hop_counts",
]


def recall_per_query(found: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-query recall (Eq. 2): ``|found ∩ truth| / |truth|``.

    Args:
        found: ``(n_queries, k)`` approximate neighbor ids.
        truth: ``(n_queries, k_truth)`` exact neighbor ids with
            ``k_truth >= k`` columns used as the reference set.
    """
    found = np.atleast_2d(found)
    truth = np.atleast_2d(truth)
    if found.shape[0] != truth.shape[0]:
        raise ValueError("found and truth must have the same number of queries")
    scores = np.empty(found.shape[0], dtype=np.float64)
    for i in range(found.shape[0]):
        scores[i] = len(np.intersect1d(found[i], truth[i])) / truth.shape[1]
    return scores


def recall(found: np.ndarray, truth: np.ndarray) -> float:
    """Mean recall@k over all queries."""
    return float(recall_per_query(found, truth).mean())


def strong_connected_components(graph: FixedDegreeGraph) -> int:
    """Number of strongly connected components (iterative Tarjan).

    Implemented from scratch (no networkx dependency in the library); the
    test suite cross-checks it against both networkx and
    ``scipy.sparse.csgraph``.
    """
    n = graph.num_nodes
    adjacency = graph.neighbors
    index = np.full(n, -1, dtype=np.int64)  # discovery order
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    stack: list[int] = []
    counter = 0
    components = 0

    for root in range(n):
        if index[root] != -1:
            continue
        # Each frame is (node, next-neighbor-position).
        work: list[list[int]] = [[root, 0]]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, pos = work[-1]
            if pos < adjacency.shape[1]:
                work[-1][1] += 1
                child = int(adjacency[node, pos])
                if index[child] == -1:
                    index[child] = lowlink[child] = counter
                    counter += 1
                    stack.append(child)
                    on_stack[child] = True
                    work.append([child, 0])
                elif on_stack[child]:
                    lowlink[node] = min(lowlink[node], index[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    components += 1
                    while True:
                        top = stack.pop()
                        on_stack[top] = False
                        if top == node:
                            break
    return components


def weak_connected_components(graph: FixedDegreeGraph) -> int:
    """Number of weakly connected components (union-find over edges)."""
    n = graph.num_nodes
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    for src in range(n):
        rs = find(src)
        for dst in graph.neighbors[src]:
            rd = find(int(dst))
            if rs != rd:
                parent[rd] = rs
    return int(sum(1 for i in range(n) if find(i) == i))


def two_hop_counts(graph: FixedDegreeGraph, sample: int = 0, seed: int = 0) -> np.ndarray:
    """Per-node 2-hop node counts.

    The 2-hop count of node ``v`` is the number of *distinct* nodes
    reachable in one or two hops from ``v``, excluding ``v`` itself
    (maximum ``d + d^2``).  ``sample > 0`` evaluates a random node subset,
    which is what the Fig. 3 bench does on larger graphs.
    """
    adjacency = graph.neighbors
    n = graph.num_nodes
    if sample and sample < n:
        rng = np.random.default_rng(seed)
        nodes = rng.choice(n, size=sample, replace=False)
    else:
        nodes = np.arange(n, dtype=np.int64)
    counts = np.empty(len(nodes), dtype=np.int64)
    for out, v in enumerate(nodes):
        one_hop = adjacency[v]
        reachable = np.unique(
            np.concatenate([one_hop, adjacency[one_hop].ravel()])
        )
        counts[out] = len(reachable) - int(np.isin(v, reachable))
    return counts


def average_two_hop_count(
    graph: FixedDegreeGraph, sample: int = 0, seed: int = 0
) -> float:
    """Average 2-hop node count (``N_2hop`` of Sec. III-A)."""
    return float(two_hop_counts(graph, sample=sample, seed=seed).mean())
