"""CAGRA graph optimization: edge reordering, pruning, reverse-edge merge.

This implements Sec. III-B2 of the paper.  The input is the initial k-NN
graph (degree ``d_init``, rows sorted ascending by distance, so a column
index *is* the edge's initial rank); the output is the final fixed-degree
CAGRA graph (degree ``d``).

Reordering (Fig. 2): for every edge ``X→Y`` we count *detourable routes* —
two-hop paths ``X→Z→Y`` that could replace the direct edge.  Following
NGT's criterion (Eq. 3) a route detours ``X→Y`` when
``max(w(X→Z), w(Z→Y)) < w(X→Y)``.  CAGRA's contribution is the
**rank-based** variant: the *initial rank* (position in the
distance-sorted adjacency list) replaces the distance ``w``, so the whole
optimization runs without a single distance computation or an
``N × d_init`` distance table.  The **distance-based** variant is kept as
the ablation baseline of Figs. 4–5.

Edges are then reordered ascending by detourable-route count (an edge few
routes can bypass is important for 2-hop reachability), pruned to the top
``d``, and finally merged with up to ``d/2`` *reverse* edges per node,
interleaved, reverse lists being ordered by the rank their forward twin
holds ("someone who considers you important is also important to you").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import GraphBuildConfig
from repro.core.graph import FixedDegreeGraph
from repro.core.nn_descent import KnnGraphResult

__all__ = [
    "OptimizeReport",
    "count_detourable_routes",
    "reorder_edges",
    "prune_to_degree",
    "merge_reverse_edges",
    "optimize_graph",
]

_BLOCK = 256  # nodes processed per vectorized batch in the detour counter


@dataclass
class OptimizeReport:
    """Work and memory accounting for one optimization run.

    These counters feed the construction-time cost model and the Fig. 4
    bench (rank- vs distance-based optimization time / memory).
    """

    reordering: str = "rank"
    detour_checks: int = 0
    distance_computations: int = 0
    distance_table_bytes: int = 0
    reorder_seconds: float = 0.0
    reverse_merge_seconds: float = 0.0
    notes: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.reorder_seconds + self.reverse_merge_seconds


def count_detourable_routes(
    neighbors: np.ndarray,
    distances: np.ndarray | None = None,
    block: int = _BLOCK,
) -> np.ndarray:
    """Detourable-route counts per edge.

    Args:
        neighbors: ``(N, d_init)`` adjacency, rows sorted ascending by
            distance (column index = initial rank).
        distances: optional ``(N, d_init)`` distance table.  When given the
            NGT criterion uses real distances (distance-based reordering);
            when ``None`` the initial rank substitutes for the distance
            (rank-based reordering, the CAGRA default).
        block: rows per vectorized batch.

    Returns:
        ``(N, d_init)`` int64 counts aligned with ``neighbors``.
    """
    n, d_init = neighbors.shape
    counts = np.zeros((n, d_init), dtype=np.int64)
    col = np.arange(d_init)
    # a = rank of X→Z (first hop), j = rank of Z→Y in Z's list (second hop).
    a_grid = col[None, :, None]
    j_grid = col[None, None, :]

    for start in range(0, n, block):
        stop = min(start + block, n)
        rows = np.arange(start, stop, dtype=np.int64)
        b = len(rows)
        nx = neighbors[start:stop].astype(np.int64)  # (b, d_init) = Z ids
        two_hop = neighbors[nx].astype(np.int64)  # (b, d_init, d_init) = Y ids

        # Locate each two-hop target Y inside X's own adjacency row.  Rows
        # are made globally unique with a per-row offset so one flat
        # searchsorted covers the whole block.
        order = np.argsort(nx, axis=1, kind="stable")
        sorted_nx = np.take_along_axis(nx, order, axis=1)
        offsets = (rows - start) * np.int64(n)
        flat_sorted = (sorted_nx + offsets[:, None]).ravel()
        keys = (two_hop + offsets[:, None, None]).reshape(b, -1) + 0  # (b, d²)
        pos = np.searchsorted(flat_sorted, keys.ravel())
        pos_clipped = np.minimum(pos, flat_sorted.size - 1)
        found = flat_sorted[pos_clipped] == keys.ravel()
        # Map the match position back to the rank of Y in X's (unsorted,
        # i.e. distance-ordered) adjacency row.
        local_sorted_pos = pos_clipped - (pos_clipped // d_init) * d_init
        row_of_pos = pos_clipped // d_init
        rank_y = order[row_of_pos, local_sorted_pos]  # (b*d²,)
        rank_y = rank_y.reshape(b, d_init, d_init)
        found = found.reshape(b, d_init, d_init)

        if distances is None:
            # Rank-based: detourable iff max(a, j) < rank(X→Y).
            detour = found & (np.maximum(a_grid, j_grid) < rank_y)
        else:
            w_xz = distances[start:stop][:, :, None]  # (b, d_init, 1)
            w_zy = distances[nx]  # (b, d_init, d_init)
            w_xy = np.take_along_axis(
                distances[start:stop], rank_y.reshape(b, -1), axis=1
            ).reshape(b, d_init, d_init)
            detour = found & (np.maximum(w_xz, w_zy) < w_xy)

        block_counts = np.zeros((b, d_init), dtype=np.int64)
        np.add.at(
            block_counts,
            (np.repeat(np.arange(b), d_init * d_init)[detour.ravel()],
             rank_y.ravel()[detour.ravel()]),
            1,
        )
        counts[start:stop] = block_counts
    return counts


def reorder_edges(
    neighbors: np.ndarray,
    counts: np.ndarray,
) -> np.ndarray:
    """Reorder every adjacency row ascending by detourable-route count.

    Stable sort: ties keep their initial (distance) rank, matching Fig. 2
    where the count order falls back on the original ordering.
    """
    order = np.argsort(counts, axis=1, kind="stable")
    return np.take_along_axis(neighbors, order, axis=1)


def prune_to_degree(neighbors: np.ndarray, degree: int) -> np.ndarray:
    """Keep the first ``degree`` (most important) edges of every row."""
    if degree > neighbors.shape[1]:
        raise ValueError(
            f"cannot prune to degree {degree}: rows only have {neighbors.shape[1]} edges"
        )
    return np.ascontiguousarray(neighbors[:, :degree])


def merge_reverse_edges(
    pruned: FixedDegreeGraph, rng: np.random.Generator | None = None
) -> FixedDegreeGraph:
    """Interleave forward and reverse edges into the final CAGRA graph.

    Per node: up to ``d/2`` reverse edges (ordered by the rank of their
    forward twin) are interleaved with forward edges; missing reverse slots
    are compensated from the forward list (Sec. III-B2).  Duplicates are
    skipped; in pathological tiny graphs remaining slots are filled with
    random distinct nodes so the out-degree stays fixed.
    """
    rng = rng or np.random.default_rng(0)
    d = pruned.degree
    n = pruned.num_nodes
    half = d // 2
    reverse_lists = pruned.reversed_edge_lists()
    merged = np.empty((n, d), dtype=np.uint32)

    for node in range(n):
        fwd = pruned.neighbors[node]
        rev = reverse_lists[node][:d]
        chosen: list[int] = []
        seen = {node}
        fwd_pos = rev_pos = 0
        rev_taken = 0
        # Interleave: forward slot, then reverse slot, compensating from
        # the forward list when reverse edges run out.
        while len(chosen) < d:
            use_reverse = (len(chosen) % 2 == 1) and rev_taken < half
            advanced = False
            if use_reverse:
                while rev_pos < len(rev):
                    cand = int(rev[rev_pos])
                    rev_pos += 1
                    if cand not in seen:
                        chosen.append(cand)
                        seen.add(cand)
                        rev_taken += 1
                        advanced = True
                        break
            if not advanced:
                while fwd_pos < len(fwd):
                    cand = int(fwd[fwd_pos])
                    fwd_pos += 1
                    if cand not in seen:
                        chosen.append(cand)
                        seen.add(cand)
                        advanced = True
                        break
            if not advanced and not use_reverse:
                # Forward exhausted: drain remaining reverse edges.
                while rev_pos < len(rev):
                    cand = int(rev[rev_pos])
                    rev_pos += 1
                    if cand not in seen:
                        chosen.append(cand)
                        seen.add(cand)
                        advanced = True
                        break
                if not advanced:
                    break
        while len(chosen) < d:
            cand = int(rng.integers(0, n))
            if cand not in seen:
                chosen.append(cand)
                seen.add(cand)
        merged[node] = np.asarray(chosen, dtype=np.uint32)
    return FixedDegreeGraph(merged)


def optimize_graph(
    initial: KnnGraphResult,
    config: GraphBuildConfig,
) -> tuple[FixedDegreeGraph, OptimizeReport]:
    """Run the full CAGRA optimization pipeline on an initial k-NN graph.

    Honors ``config.reordering`` (``rank`` / ``distance`` / ``none``) and
    ``config.add_reverse_edges`` so the Fig. 3 partial-optimization
    ablations reuse this single entry point.
    """
    d = config.graph_degree
    neighbors = initial.graph.neighbors
    n, d_init = neighbors.shape
    if d > d_init:
        raise ValueError(
            f"graph_degree {d} exceeds initial degree {d_init}; "
            "raise intermediate_degree"
        )
    report = OptimizeReport(reordering=config.reordering)

    started = time.perf_counter()
    if config.reordering == "none":
        reordered = neighbors
    else:
        distances = None
        if config.reordering == "distance":
            distances = initial.distances
            report.distance_table_bytes = distances.nbytes
            report.distance_computations = 0  # table reused from NN-descent
            report.notes.append(
                "distance-based reordering holds an N x d_init distance table "
                f"({distances.nbytes / 1e6:.1f} MB)"
            )
        counts = count_detourable_routes(neighbors, distances=distances)
        report.detour_checks = n * d_init * d_init
        reordered = reorder_edges(neighbors, counts)
    pruned = FixedDegreeGraph(prune_to_degree(reordered, d))
    report.reorder_seconds = time.perf_counter() - started

    started = time.perf_counter()
    if config.add_reverse_edges:
        final = merge_reverse_edges(pruned, rng=np.random.default_rng(config.seed))
    else:
        final = pruned
    report.reverse_merge_seconds = time.perf_counter() - started
    return final, report
