"""Per-task retry policy with seeded exponential backoff.

Shard tasks are pure functions of their payloads, so re-running one is
always safe — the only question is *when*.  :class:`RetryPolicy` answers
it deterministically: exponential backoff with jitter drawn from a
:class:`numpy.random.Philox`-family generator seeded by
``(seed, task_index, attempt)``, never by wall clock or worker identity,
so a retried run schedules identically to the first (DESIGN.md §6 /
lint rule RL003).

The watchdog half of the policy (``task_timeout_s``) bounds how long the
executor waits for any single task before declaring it hung and failing
over; see :meth:`ShardExecutor.map_outcomes` for how timeouts, retries,
and pool recycling interact.

When the retried work carries its own deadline (a serving request, a
router dispatch), pass it to :meth:`RetryPolicy.backoff_seconds` as
``deadline`` (monotonic seconds): the computed backoff is truncated to
the remaining deadline budget, so a retry never sleeps past the point
where the answer could still be useful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["RetryPolicy", "TaskTimeout"]


class TaskTimeout(RuntimeError):
    """A task exceeded the watchdog timeout on every allowed attempt."""


@dataclass(frozen=True)
class RetryPolicy:
    """How failed or hung shard tasks are retried.

    Attributes:
        max_retries: additional attempts after the first (``0`` disables
            retrying; a task is executed at most ``max_retries + 1``
            times).
        task_timeout_s: per-attempt watchdog — a pooled task still
            running after this many seconds is declared hung, its worker
            is recycled (process backend), and the task is retried or
            failed with :class:`TaskTimeout`.  ``0`` disables the
            watchdog.  The serial backend cannot watchdog (the task runs
            on the calling thread).
        backoff_base_ms: backoff before retry ``a`` is
            ``min(backoff_max_ms, backoff_base_ms * 2**a)`` scaled by a
            seeded jitter factor in ``[0.5, 1.0)``.
        backoff_max_ms: backoff ceiling.
        seed: jitter seed (combined with task index and attempt so no
            two tasks share a backoff stream).
    """

    max_retries: int = 2
    task_timeout_s: float = 0.0
    backoff_base_ms: float = 10.0
    backoff_max_ms: float = 2000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.task_timeout_s < 0:
            raise ValueError("task_timeout_s must be >= 0 (0 = no watchdog)")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be >= 0")
        if self.backoff_max_ms < self.backoff_base_ms:
            raise ValueError("backoff_max_ms must be >= backoff_base_ms")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")

    def backoff_seconds(
        self,
        task_index: int,
        attempt: int,
        deadline: float | None = None,
        clock=time.monotonic,
    ) -> float:
        """Deterministic jittered backoff before retry ``attempt``.

        With ``deadline`` (monotonic seconds, same clock as ``clock``)
        the backoff is truncated to the remaining deadline budget: a
        retry sleeping past the deadline could only ever produce an
        answer nobody is still waiting for.  An already-expired deadline
        yields ``0.0`` (retry immediately; the attempt itself will be
        timed out by whoever owns the deadline).
        """
        capped = min(self.backoff_max_ms, self.backoff_base_ms * (2.0 ** attempt))
        rng = np.random.default_rng([self.seed, task_index, attempt])
        seconds = capped * (0.5 + 0.5 * float(rng.random())) / 1e3
        if deadline is not None:
            seconds = min(seconds, max(0.0, deadline - clock()))
        return seconds
