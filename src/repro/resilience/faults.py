"""Deterministic fault injection (the chaos harness).

Production failures — a worker process dying mid-search, a shard hanging,
an index file that will not load, a search returning garbage — are rare
and timing-dependent, which makes the code paths that handle them the
least-tested code in the system.  This module turns them into *planned*
events: a :class:`FaultPlan` names **where** (an injection point), **what**
(a fault kind), and **when** (context matching plus hit counting), and the
instrumented call sites consult a :class:`FaultInjector` built from that
plan.  The same plan triggers the same faults on every backend and every
run, so failure paths are as deterministically testable as the happy path.

Injection points (:data:`FAULT_POINTS`):

========================  ====================================================
``shard.build``           inside a per-shard build task (worker body)
``shard.search``          inside a per-shard search task (worker body)
``pool.spawn``            when :class:`~repro.parallel.executor.ShardExecutor`
                          creates its thread/process pool
``serve.execute``         in :meth:`CagraServer._execute`, before the batch
                          search dispatch
``index.load``            when the CLI loads a saved index from disk
``stream.wal.append``     in :class:`repro.stream.WriteAheadLog`, after the
                          payload segment is written but before the commit
                          record is appended (the crash-consistency window)
``router.dispatch``       in :meth:`repro.router.ShardRouter.search`, before a
                          request leg is submitted to the chosen replica
                          (context: ``replica``, ``tenant``) — a ``raise`` here
                          is what a dead/unreachable replica looks like
``router.hedge``          in the router's hedge path, before the hedge leg is
                          issued to the backup replica (context: ``replica``,
                          ``tenant``)
========================  ====================================================

Fault kinds (:data:`FAULT_KINDS`):

* ``raise`` — raise :class:`FaultInjected`;
* ``crash`` — ``os._exit`` when running inside a worker *process* (a real
  SIGKILL-grade death: the pool sees :class:`BrokenProcessPool`); in the
  parent process / a worker thread it degrades to raising
  :class:`WorkerCrash`, so serial, thread, and process backends all see
  "that shard failed" and produce bitwise-identical degraded results;
* ``delay`` — sleep ``delay_ms`` then continue (a straggler / hung
  worker; pair with the executor watchdog);
* ``corrupt`` — the call site receives the spec back and poisons its
  *result* (sentinel ids, NaN distances) instead of failing loudly.

Plans are activated per call site: :class:`ParallelConfig.fault_plan` /
:class:`ServeConfig.fault_plan` carry a JSON plan (or ``@path``), and the
``REPRO_FAULT_PLAN`` environment variable overrides an empty config field
(see :func:`resolve_fault_plan`) so chaos CI can force a plan without
touching call sites.  With no plan configured every instrumented site
costs one ``is None`` check — zero overhead when disabled.

Determinism notes: context matching (``match={"shard": 3}``) and
``attempt`` matching are scheduling-independent and therefore replay
bitwise-identically across backends.  ``after``/``times`` hit counting is
stateful per :class:`FaultInjector` instance; worker-side points
(``shard.build`` / ``shard.search``) rebuild their injector per task, so
hit counting is only meaningful at stateful sites (``serve.execute``,
``pool.spawn``, ``index.load``).
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "ENV_FAULT_PLAN",
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "WorkerCrash",
    "current_attempt",
    "resolve_fault_plan",
    "set_current_attempt",
]

#: Environment override consulted by :func:`resolve_fault_plan` when the
#: config field is empty.  Holds a JSON plan or ``@/path/to/plan.json``.
ENV_FAULT_PLAN = "REPRO_FAULT_PLAN"

#: Recognised injection points (see the module docstring table).
FAULT_POINTS = (
    "shard.build",
    "shard.search",
    "pool.spawn",
    "serve.execute",
    "index.load",
    "stream.wal.append",
    "router.dispatch",
    "router.hedge",
)

#: Recognised fault kinds.
FAULT_KINDS = ("raise", "crash", "delay", "corrupt")

#: Worker exit status used by ``crash`` faults (distinctive in waitpid logs).
CRASH_EXIT_CODE = 87


class FaultInjected(RuntimeError):
    """Raised by a ``raise``-kind fault (the planned failure itself)."""


class WorkerCrash(FaultInjected):
    """In-process stand-in for ``os._exit`` when there is no worker process
    to kill (serial/thread backends, or a fault fired in the parent)."""


# ----------------------------------------------------------------------
# retry-attempt context (set by the executor around each task execution)
# ----------------------------------------------------------------------
_STATE = threading.local()


def set_current_attempt(attempt: int) -> None:
    """Record the retry attempt (0 = first try) for this thread's task."""
    _STATE.attempt = attempt


def current_attempt() -> int:
    """The retry attempt of the task executing on this thread."""
    return getattr(_STATE, "attempt", 0)


def _in_worker_process() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    Attributes:
        point: injection point name (one of :data:`FAULT_POINTS`).
        kind: fault kind (one of :data:`FAULT_KINDS`).
        match: context equality filter — the fault fires only when every
            ``key: value`` pair equals the context the call site provides
            (e.g. ``{"shard": 3}`` targets shard 3 only; ``{}`` matches
            every hit at the point).
        attempt: fire only on this retry attempt (``0`` = first try only,
            which makes the fault *transient*: the executor's retry
            succeeds).  ``None`` fires on every attempt (permanent).
        after: skip the first N matching hits (stateful sites only).
        times: fire at most N times per injector instance (``0`` =
            unlimited; stateful sites only).
        delay_ms: sleep duration for ``delay`` faults.
    """

    point: str
    kind: str = "raise"
    match: dict = field(default_factory=dict)
    attempt: int | None = None
    after: int = 0
    times: int = 0
    delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {self.point!r}; expected one of {FAULT_POINTS}"
            )
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times < 0:
            raise ValueError("times must be >= 0 (0 = unlimited)")
        if self.delay_ms < 0:
            raise ValueError("delay_ms must be >= 0")
        if self.attempt is not None and self.attempt < 0:
            raise ValueError("attempt must be >= 0 (or None)")

    def matches(self, context: dict) -> bool:
        """Does this spec apply to a hit with ``context``?"""
        for key, want in self.match.items():
            if context.get(key) != want:
                return False
        if self.attempt is not None and context.get("attempt", 0) != self.attempt:
            return False
        return True

    def to_dict(self) -> dict:
        out = {"point": self.point, "kind": self.kind}
        if self.match:
            out["match"] = dict(self.match)
        if self.attempt is not None:
            out["attempt"] = self.attempt
        if self.after:
            out["after"] = self.after
        if self.times:
            out["times"] = self.times
        if self.delay_ms:
            out["delay_ms"] = self.delay_ms
        return out

    @classmethod
    def from_dict(cls, raw: dict) -> "FaultSpec":
        known = {"point", "kind", "match", "attempt", "after", "times", "delay_ms"}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec field(s): {sorted(unknown)}")
        return cls(
            point=raw["point"],
            kind=raw.get("kind", "raise"),
            match=dict(raw.get("match", {})),
            attempt=raw.get("attempt"),
            after=int(raw.get("after", 0)),
            times=int(raw.get("times", 0)),
            delay_ms=float(raw.get("delay_ms", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` (first match wins)."""

    specs: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError("FaultPlan.specs must hold FaultSpec instances")

    def to_json(self) -> str:
        return json.dumps({"specs": [spec.to_dict() for spec in self.specs]})

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        raw = json.loads(text)
        if isinstance(raw, list):  # bare spec list shorthand
            raw = {"specs": raw}
        if not isinstance(raw, dict) or "specs" not in raw:
            raise ValueError('fault plan JSON must be {"specs": [...]} or a list')
        return cls(specs=tuple(FaultSpec.from_dict(s) for s in raw["specs"]))


def resolve_fault_plan(explicit: str = "") -> FaultPlan | None:
    """Resolve a plan string (config field wins, then ``REPRO_FAULT_PLAN``).

    Either source may be raw JSON or ``@path`` naming a JSON file; empty
    everywhere resolves to ``None`` (injection disabled — the common,
    zero-overhead case).
    """
    text = explicit or os.environ.get(ENV_FAULT_PLAN, "")
    if not text:
        return None
    if text.startswith("@"):
        with open(text[1:], encoding="utf-8") as handle:
            text = handle.read()
    return FaultPlan.from_json(text)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at instrumented call sites.

    One injector instance keeps the ``after``/``times`` hit counters for
    its call site; :meth:`fire` applies ``raise``/``crash``/``delay``
    faults directly and returns ``corrupt`` specs to the caller (only the
    call site knows how to poison its own result).
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._hits = [0] * len(plan.specs)
        self._fired = [0] * len(plan.specs)

    @classmethod
    def from_json(cls, text: str) -> "FaultInjector":
        return cls(FaultPlan.from_json(text))

    def check(self, point: str, **context) -> FaultSpec | None:
        """Return the first spec that fires for this hit (count it), else
        ``None``.  ``attempt`` defaults to the executor-provided retry
        attempt of the current thread."""
        context.setdefault("attempt", current_attempt())
        for i, spec in enumerate(self.plan.specs):
            if spec.point != point or not spec.matches(context):
                continue
            self._hits[i] += 1
            if self._hits[i] <= spec.after:
                continue
            if spec.times and self._fired[i] >= spec.times:
                continue
            self._fired[i] += 1
            return spec
        return None

    def fire(self, point: str, **context) -> FaultSpec | None:
        """Check and *apply* the fault.

        ``raise`` raises :class:`FaultInjected`; ``crash`` kills the
        worker process (or raises :class:`WorkerCrash` when there is no
        process to kill); ``delay`` sleeps then returns ``None``
        (transparent besides the stall); ``corrupt`` is returned to the
        caller to poison its result.
        """
        spec = self.check(point, **context)
        if spec is None:
            return None
        detail = f"injected {spec.kind} fault at {point} ({context})"
        if spec.kind == "raise":
            raise FaultInjected(detail)
        if spec.kind == "crash":
            if _in_worker_process():
                os._exit(CRASH_EXIT_CODE)
            raise WorkerCrash(detail)
        if spec.kind == "delay":
            time.sleep(spec.delay_ms / 1e3)
            return None
        return spec  # corrupt

    def __repr__(self) -> str:
        return f"FaultInjector(specs={len(self.plan.specs)}, fired={sum(self._fired)})"
