"""Per-shard circuit breaker (closed → open → half-open).

A shard that fails every search should not be asked again on every
request — each ask costs a retry storm and a degraded-merge pass.  The
breaker trips **open** after ``failure_threshold`` consecutive failures
and the serving layer skips the shard outright; after ``cooldown_s`` the
breaker admits a single **half-open** probe, and the probe's outcome
either **closes** the breaker (shard recovered) or re-opens it for
another cooldown.

Exactly one caller wins the probe slot per cooldown window: the
:meth:`CircuitBreaker.allow` call that performs the open → half-open
transition *is* the probe, and every other concurrent caller is rejected
until the probe reports an outcome — or abandons the slot by staying
silent for another ``cooldown_s``, after which the next ``allow`` claims
it.  Without that guarantee a thundering herd of callers would all be
"the probe" and a still-broken shard would take a full burst of traffic
the moment its cooldown expired.

The clock is injectable (``clock=time.monotonic`` by default) so state
transitions are unit-testable without sleeping, and all methods are
thread-safe (the serving scheduler records outcomes while ``health()``
snapshots from caller threads).
"""

from __future__ import annotations

import threading
import time

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Consecutive-failure breaker guarding one shard (or any resource)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_started_at = 0.0
        self._opens = 0
        self._closes = 0
        self._probe_rejections = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May the guarded shard be used right now?

        Closed: yes.  Open: no, until ``cooldown_s`` has elapsed — then
        the breaker transitions to half-open and admits the caller as
        *the* probe.  Half-open: no — exactly one probe is in flight per
        cooldown window, and concurrent callers are rejected until the
        probe's outcome is recorded.  A probe that never reports is
        abandoned after another ``cooldown_s`` and the slot is handed to
        the next caller.
        """
        with self._lock:
            now = self._clock()
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if now - self._opened_at >= self.cooldown_s:
                    self._state = self.HALF_OPEN
                    self._probe_started_at = now
                    return True
                return False
            # HALF_OPEN: the probe slot is taken.  Reclaim it only if
            # the current probe has been silent for a whole window.
            if now - self._probe_started_at >= self.cooldown_s:
                self._probe_started_at = now
                return True
            self._probe_rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._state = self.CLOSED
                self._closes += 1
            self._consecutive_failures = 0

    def record_failure(self) -> bool:
        """Record one failure; ``True`` when this call tripped the breaker
        open (callers use it to count trips without re-reading state)."""
        with self._lock:
            if self._state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._opens += 1
                return True
            self._consecutive_failures += 1
            if (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._opens += 1
                return True
            return False

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-friendly state for ``health()`` surfaces."""
        with self._lock:
            until_probe = 0.0
            if self._state == self.OPEN:
                until_probe = max(
                    0.0, self.cooldown_s - (self._clock() - self._opened_at)
                )
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "opens": self._opens,
                "closes": self._closes,
                "probe_rejections": self._probe_rejections,
                "seconds_until_probe": until_probe,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"threshold={self.failure_threshold}, cooldown={self.cooldown_s}s)"
        )
