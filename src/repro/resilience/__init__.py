"""repro.resilience — deterministic fault injection, retry, and breakers.

The failure-handling substrate of the parallel/sharding/serving stack:

* :mod:`repro.resilience.faults` — a seedable :class:`FaultPlan` /
  :class:`FaultInjector` with named injection points (``shard.build``,
  ``shard.search``, ``pool.spawn``, ``serve.execute``, ``index.load``)
  and fault kinds (raise, crash, delay, corrupt), activated via config
  knobs or the ``REPRO_FAULT_PLAN`` environment variable — zero overhead
  when disabled;
* :mod:`repro.resilience.retry` — :class:`RetryPolicy`, the per-task
  retry/backoff/watchdog policy the shard executor runs under;
* :mod:`repro.resilience.breaker` — :class:`CircuitBreaker`, the
  closed→open→half-open guard :class:`repro.serve.CagraServer` keeps per
  shard.

See ``docs/resilience.md`` for the fault-point catalog and the layer-by-
layer failure-semantics contract.
"""

from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import (
    ENV_FAULT_PLAN,
    FAULT_KINDS,
    FAULT_POINTS,
    FaultInjected,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    WorkerCrash,
    current_attempt,
    resolve_fault_plan,
    set_current_attempt,
)
from repro.resilience.retry import RetryPolicy, TaskTimeout

__all__ = [
    "CircuitBreaker",
    "ENV_FAULT_PLAN",
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FaultInjected",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "TaskTimeout",
    "WorkerCrash",
    "current_attempt",
    "resolve_fault_plan",
    "set_current_attempt",
]
