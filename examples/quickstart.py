"""Quickstart: build a CAGRA index and search it.

Run:  python examples/quickstart.py

Builds a CAGRA graph over a synthetic DEEP-like dataset (96-dim
descriptors), searches a query batch, and reports recall against exact
brute force plus the operation counters the GPU cost model prices.
"""

import time

import numpy as np

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import exact_search
from repro.core.metrics import recall
from repro.datasets import load_dataset
from repro.gpusim import GpuCostModel


def main(scale: int = 4000, num_queries: int = 100) -> None:
    # 1. Data: a scaled-down synthetic analogue of DEEP-1M (dim 96).
    bundle = load_dataset("deep-1m", scale=scale, num_queries=num_queries)
    data, queries = bundle.data, bundle.queries
    print(f"dataset: {bundle.spec.name} analogue, {data.shape[0]} x {data.shape[1]} "
          f"(paper-scale N = {bundle.spec.original_size:,})")

    # 2. Build: NN-descent initial graph -> rank-based optimization.
    started = time.perf_counter()
    index = CagraIndex.build(data, GraphBuildConfig(graph_degree=32))
    elapsed = time.perf_counter() - started
    report = index.build_report
    print(f"build: {elapsed:.1f}s python wall time "
          f"({report.nn_descent_iterations} NN-descent rounds, "
          f"{report.knn_distance_computations:,} distance computations)")

    # 3. Search: the itopk knob trades recall for throughput.  The
    #    reference path (index.search) mirrors the CUDA kernels and feeds
    #    the cost model; index.search_fast is the vectorized bulk path.
    truth, _ = exact_search(data, queries, 10)
    gpu = GpuCostModel()
    print(f"\n{'itopk':>6} {'recall@10':>10} {'dist/query':>11} {'simulated QPS':>14}")
    for itopk in (16, 32, 64, 128):
        result = index.search(queries, 10, SearchConfig(itopk=itopk, algo="single_cta"))
        timing = gpu.search_time(result.report, index.dim, itopk=itopk)
        print(f"{itopk:>6} {recall(result.indices, truth):>10.4f} "
              f"{result.report.distance_computations / len(queries):>11.0f} "
              f"{timing.qps(len(queries)):>14,.0f}")

    # 4. Persist and reload.
    index.save("/tmp/cagra_quickstart.npz")
    loaded = CagraIndex.load("/tmp/cagra_quickstart.npz")
    check = loaded.search(queries[:5], 5, SearchConfig(itopk=32))
    assert np.isfinite(check.distances).all()
    print("\nsaved and reloaded index from /tmp/cagra_quickstart.npz")


if __name__ == "__main__":
    main()
