"""FP16 storage and index persistence (the Sec. IV-C1 bandwidth lever).

Run:  python examples/fp16_and_persistence.py

The single-CTA kernel is device-bandwidth-bound for large batches and
dimensions, so the paper stores vectors in half precision: half the bytes
per vector, nearly the same recall.  This example quantifies both halves
of that trade on a GIST-like (960-dim) dataset and shows the index file
shrink on disk.
"""

import os

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import exact_search
from repro.core.metrics import recall
from repro.datasets import load_dataset
from repro.bench import run_cagra_sweep


def main(scale: int = 1500, num_queries: int = 40) -> None:
    bundle = load_dataset("gist-1m", scale=scale, num_queries=num_queries)
    data, queries = bundle.data, bundle.queries
    truth, _ = exact_search(data, queries, 10)
    print(f"{bundle.spec.name} analogue: n={data.shape[0]}, dim={data.shape[1]} "
          "(highest-dimensional dataset in Table I)")

    indexes = {}
    for dtype in ("float32", "float16"):
        print(f"building {dtype} index...")
        indexes[dtype] = CagraIndex.build(
            data,
            GraphBuildConfig(graph_degree=32, seed=0),
            dataset_dtype=dtype,
        )

    print(f"\n{'dtype':<10}{'recall@10':>10}{'QPS (sim, batch 10k)':>22}"
          f"{'index bytes':>14}")
    for dtype, index in indexes.items():
        curve = run_cagra_sweep(
            index, queries, truth, 10, [64], 10_000,
            SearchConfig(algo="single_cta"),
        )
        point = curve.points[0]
        path = f"/tmp/cagra_{dtype}.npz"
        index.save(path)
        print(f"{dtype:<10}{point.recall:>10.4f}{point.qps:>22,.0f}"
              f"{os.path.getsize(path):>14,}")

    print("\npaper shape check: FP16 wins QPS on high-dim data at equal "
          "recall (Figs. 13-14: 'half-precision does not degrade the "
          "quality of results while still benefitting from higher "
          "throughput').")


if __name__ == "__main__":
    main()
