"""Graph-quality anatomy of the CAGRA optimization (Fig. 3 style).

Run:  python examples/graph_quality_analysis.py

Starting from one NN-descent k-NN graph, applies each CAGRA optimization
in isolation and together, and reports the two reachability metrics the
paper optimizes: average 2-hop node count (higher = wider exploration per
iteration) and strong connected components (1 = everything reachable).
Then verifies the punchline: rank-based reordering matches distance-based
quality without computing a single distance.
"""

import time

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import exact_search
from repro.core.graph import FixedDegreeGraph
from repro.core.metrics import (
    average_two_hop_count,
    recall,
    strong_connected_components,
)
from repro.core.nn_descent import build_knn_graph
from repro.core.optimize import prune_to_degree
from repro.datasets import load_dataset

DEGREE = 32


def main(scale: int = 3000, num_queries: int = 50) -> None:
    bundle = load_dataset("deep-1m", scale=scale, num_queries=num_queries)
    data, queries = bundle.data, bundle.queries
    truth, _ = exact_search(data, queries, 10)

    print("building the shared initial k-NN graph (NN-descent, d_init = 2d)...")
    knn = build_knn_graph(data, 2 * DEGREE, GraphBuildConfig(graph_degree=DEGREE))

    variants = {
        "k-NN (pruned)": FixedDegreeGraph(
            prune_to_degree(knn.graph.neighbors, DEGREE)
        ),
        "reorder only": CagraIndex.from_knn_result(
            data, knn, GraphBuildConfig(graph_degree=DEGREE, add_reverse_edges=False)
        ).graph,
        "reverse only": CagraIndex.from_knn_result(
            data, knn, GraphBuildConfig(graph_degree=DEGREE, reordering="none")
        ).graph,
        "full CAGRA": CagraIndex.from_knn_result(
            data, knn, GraphBuildConfig(graph_degree=DEGREE)
        ).graph,
    }

    max_two_hop = DEGREE + DEGREE * DEGREE
    print(f"\n{'graph':<16}{'2-hop count':>12}{'(max ' + str(max_two_hop) + ')':>12}"
          f"{'strong CC':>11}")
    for name, graph in variants.items():
        two_hop = average_two_hop_count(graph, sample=500, seed=0)
        scc = strong_connected_components(graph)
        print(f"{name:<16}{two_hop:>12.1f}{two_hop / max_two_hop:>11.0%}{scc:>11}")

    # Convergence: a better-optimized graph reaches the recall target in
    # fewer search iterations (this is what the 2-hop metric buys).
    from repro import CagraIndex as _Index
    from repro.bench import iteration_trace

    print("\nconvergence (recall@10 vs iteration budget, itopk 64):")
    budgets = [2, 4, 8, 16, 32]
    for name in ("k-NN (pruned)", "full CAGRA"):
        index = _Index(data, variants[name])
        trace = iteration_trace(
            index, queries, truth, 10, budgets, SearchConfig(itopk=64)
        )
        series = "  ".join(f"{p.max_iterations}:{p.recall:.3f}" for p in trace)
        print(f"  {name:<16} {series}")

    print("\nrank- vs distance-based reordering (Q-A2/Q-A3):")
    for flavour in ("rank", "distance"):
        started = time.perf_counter()
        index = CagraIndex.from_knn_result(
            data, knn, GraphBuildConfig(graph_degree=DEGREE, reordering=flavour)
        )
        opt_seconds = time.perf_counter() - started
        result = index.search(queries, 10, SearchConfig(itopk=64, algo="single_cta"))
        table = index.build_report.optimize.distance_table_bytes
        print(f"  {flavour:<9} optimize {opt_seconds:5.2f}s  "
              f"recall@10 {recall(result.indices, truth):.4f}  "
              f"distance table {table / 1e6:6.2f} MB")
    print("\npaper shape check: both flavours reach the same recall; "
          "rank-based needs no distance table (Fig. 4 OOMs distance-based "
          "on DEEP-100M).")


if __name__ == "__main__":
    main()
