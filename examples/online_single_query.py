"""Online (single-query) search: multi-CTA vs single-CTA vs HNSW.

Run:  python examples/online_single_query.py

The online-serving use case (Fig. 10 top / Fig. 14): one query at a time.
A single CTA leaves the GPU almost entirely idle, so CAGRA maps one query
to *multiple* CTAs sharing a device-memory hash table.  This example shows
(a) the Fig. 7 auto-dispatch rule picking multi-CTA at batch 1, and
(b) simulated latencies against HNSW on the CPU.
"""

import numpy as np

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import HnswIndex, exact_search
from repro.core.config import choose_algo
from repro.core.metrics import recall
from repro.datasets import load_dataset
from repro.gpusim import CpuCostModel, GpuCostModel


def main(scale: int = 3000, num_queries: int = 30) -> None:
    bundle = load_dataset("glove-200", scale=scale, num_queries=num_queries)
    data, queries = bundle.data, bundle.queries
    metric = bundle.spec.metric
    truth, _ = exact_search(data, queries, 10, metric=metric)

    print("Fig. 7 dispatch rule (108 SMs, M_T=512):")
    for batch, itopk in ((1, 64), (50, 64), (10_000, 64), (10_000, 1024)):
        algo = choose_algo(SearchConfig(itopk=itopk), batch, num_sms=108)
        print(f"  batch={batch:>6,} itopk={itopk:>5} -> {algo}")

    print("\nbuilding CAGRA and HNSW indexes...")
    index = CagraIndex.build(
        data, GraphBuildConfig(graph_degree=32, metric=metric)
    )
    hnsw = HnswIndex(data, m=16, ef_construction=100, metric=metric).build()
    gpu, cpu = GpuCostModel(), CpuCostModel()

    print(f"\nsingle-query latency (batch=1), {len(queries)} queries averaged:")
    print(f"{'method':<22}{'recall@10':>10}{'latency (sim)':>16}{'QPS (sim)':>12}")
    for algo in ("multi_cta", "single_cta"):
        seconds = 0.0
        hits = 0.0
        for i in range(len(queries)):
            result = index.search(
                queries[i], 10, SearchConfig(itopk=64, algo=algo, seed=i)
            )
            seconds += gpu.search_time(result.report, index.dim, itopk=64).seconds
            hits += recall(result.indices, truth[i : i + 1])
        mean = seconds / len(queries)
        print(f"{'CAGRA ' + algo:<22}{hits / len(queries):>10.4f}"
              f"{mean * 1e6:>13.1f} us{1 / mean:>12,.0f}")

    ids, _, counters = hnsw.search(queries, 10, ef=64)
    per_query = cpu.search_time(
        counters.distance_computations // len(queries),
        counters.hops // len(queries),
        index.dim,
        batch_size=1,
    ).seconds
    print(f"{'HNSW (1 thread)':<22}{recall(ids, truth):>10.4f}"
          f"{per_query * 1e6:>13.1f} us{1 / per_query:>12,.0f}")
    print("\npaper shape check: multi-CTA CAGRA above HNSW at matched recall "
          "(paper: 3.4-53x at 95% recall), and the advantage grows with the "
          "recall target.")


if __name__ == "__main__":
    main()
