"""Beyond the paper's core: multi-GPU sharding, filtered search, refinement.

Run:  python examples/sharded_and_filtered.py

Three production features around the core index:

* **sharding** (Sec. IV-C2/V-E): datasets beyond one device's memory are
  split into independent per-GPU CAGRA indexes whose results merge;
* **filtered search**: a boolean mask restricts results (e.g. a metadata
  predicate) without touching the graph;
* **refinement**: FP16 search + FP32 re-ranking recovers full-precision
  ordering at the cost of k' exact distances per query.
"""

import numpy as np

from repro import (
    CagraIndex,
    GraphBuildConfig,
    SearchConfig,
    ShardedCagraIndex,
    refine,
)
from repro.baselines import exact_search
from repro.core.metrics import recall
from repro.datasets import load_dataset
from repro.parallel import ParallelConfig, available_cpus


def main(scale: int = 3000, num_queries: int = 50) -> None:
    bundle = load_dataset("deep-1m", scale=scale, num_queries=num_queries)
    data, queries = bundle.data, bundle.queries
    truth, _ = exact_search(data, queries, 10)

    # --- sharding ---------------------------------------------------------
    # Shard builds and searches run concurrently on a repro.parallel
    # worker pool (here: a process per shard, capped by available CPUs);
    # results are bitwise identical to backend="serial".
    workers = min(4, available_cpus())
    print(f"building a 4-shard index ({workers} worker process(es), "
          "one simulated GPU per shard)...")
    sharded = ShardedCagraIndex.build(
        data, 4, GraphBuildConfig(graph_degree=16),
        parallel=ParallelConfig(num_workers=workers, backend="auto"),
    )
    result = sharded.search(queries, 10, SearchConfig(itopk=64))
    single = CagraIndex.build(data, GraphBuildConfig(graph_degree=32))
    print(f"  sharded recall@10: {recall(result.indices, truth):.4f} "
          f"(per-GPU memory {sharded.max_shard_memory_bytes():,} B vs "
          f"monolithic {single.memory_bytes():,} B; slowest shard "
          f"{max(result.shard_seconds) * 1e3:.0f} ms of "
          f"{sum(result.shard_seconds) * 1e3:.0f} ms total shard work)")

    # --- filtered search --------------------------------------------------
    mask = np.zeros(len(data), dtype=bool)
    mask[: len(data) // 4] = True  # e.g. "category A" rows only
    allowed = np.nonzero(mask)[0]
    truth_local, _ = exact_search(data[allowed], queries, 10)
    filtered_truth = allowed[truth_local.astype(np.int64)]
    filtered = single.search(
        queries, 10, SearchConfig(itopk=128), filter_mask=mask
    )
    print(f"  filtered search (25% selectivity) recall@10: "
          f"{recall(filtered.indices, filtered_truth):.4f}; "
          f"all results in-mask: {bool(mask[filtered.indices.astype(int)].all())}")

    # --- FP16 + refine ----------------------------------------------------
    fp16 = CagraIndex.build(
        data, GraphBuildConfig(graph_degree=32), dataset_dtype="float16"
    )
    raw = fp16.search(queries, 30, SearchConfig(itopk=64))
    refined_ids, _ = refine(data, queries, raw.indices, 10)
    print(f"  FP16 search recall@10:          "
          f"{recall(raw.indices[:, :10], truth):.4f}")
    print(f"  FP16 search + FP32 refine:      "
          f"{recall(refined_ids, truth):.4f}")


if __name__ == "__main__":
    main()
