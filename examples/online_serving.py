"""Online serving: micro-batching, caching, backpressure, hot index swap.

Run:  python examples/online_serving.py

The offline entry points (`search`, `search_fast`) assume the whole query
batch exists up front.  Real traffic arrives one query at a time, so
`repro.serve.CagraServer` coalesces single-query submissions into
micro-batches (flushed on `max_batch` or `max_wait_ms`) for the
single-CTA fast path, and routes batch-of-1 flushes through the
multi-CTA reference path — the Table II dispatch rule, applied online.
This example walks the full serving surface:

1. a seeded Poisson (open-loop) load, with the batch-size histogram the
   scheduler produced;
2. the LRU result cache answering a repeated query without a search;
3. a hot `swap_index` to a grown (`extend`-ed) index with zero dropped
   requests;
4. the metrics surface (`server.stats().summary()`).
"""

import numpy as np

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import exact_search
from repro.core.metrics import recall
from repro.datasets import load_dataset, make_queries
from repro.serve import CagraServer, ServeConfig, run_open_loop


def main(scale: int = 2000, num_queries: int = 30) -> None:
    bundle = load_dataset("deep-1m", scale=scale, num_queries=num_queries)
    data, queries = bundle.data, bundle.queries
    metric = bundle.spec.metric

    print("building the index...")
    index = CagraIndex.build(data, GraphBuildConfig(graph_degree=16, metric=metric))

    config = ServeConfig(
        max_batch=32, max_wait_ms=2.0, queue_capacity=1024, cache_capacity=256
    )
    server = CagraServer(index, config, search_config=SearchConfig(itopk=64, seed=0))

    with server:
        # 1. seeded Poisson load
        report = run_open_loop(
            server, queries, rate_qps=400.0, num_requests=6 * num_queries, seed=7
        )
        print(f"\n{report.summary()}")
        truth, _ = exact_search(data, queries, 10, metric=metric)
        rows = np.array([row for row, _ in report.results], dtype=np.int64)
        found = np.stack([ids for _, ids in report.results])
        print(f"served recall@10: {recall(found, truth[rows]):.4f}")

        # 2. the result cache: identical query, no second search
        first = server.search(queries[0], k=10)
        again = server.search(queries[0], k=10)
        print(f"\nrepeat query served from cache: {again.from_cache} "
              f"(first time: {first.from_cache})")

        # 3. hot swap: extend the dataset and publish without downtime
        extra = make_queries(data, 64, seed=99)
        grown = server.index.extend(extra)
        server.swap_index(grown)
        hit = server.search(extra[0], k=1)
        print(f"after swap_index: server now has {server.index.size} vectors; "
              f"a brand-new vector finds itself: "
              f"{int(hit.indices[0]) >= len(data)}")

        # 4. the metrics surface
        print(f"\n{server.stats().summary()}")

    print("\nserver drained and stopped cleanly.")


if __name__ == "__main__":
    main()
