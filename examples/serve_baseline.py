"""Serving a baseline index through the unified AnnIndex protocol.

Run:  python examples/serve_baseline.py

`CagraServer` is not wired to CAGRA specifically: it serves anything
that satisfies the `repro.api.AnnIndex` protocol.  This example builds
an HNSW baseline with the `build_index` factory, serves it with
micro-batching and the LRU result cache, then hot-swaps the backend to
a CAGRA index mid-session — a different index *kind* — without dropping
a request.
"""

import numpy as np

from repro import SearchConfig
from repro.api import build_index
from repro.baselines import exact_search
from repro.core.metrics import recall
from repro.datasets import load_dataset
from repro.serve import CagraServer, ServeConfig


def main(scale: int = 1500, num_queries: int = 20) -> None:
    bundle = load_dataset("deep-1m", scale=scale, num_queries=num_queries)
    data, queries = bundle.data, bundle.queries
    metric = bundle.spec.metric
    truth, _ = exact_search(data, queries, 10, metric=metric)

    print("building an HNSW baseline via the build_index factory...")
    hnsw = build_index("hnsw", data, metric=metric, degree=16, seed=0)
    print(f"kind={hnsw.kind}  dim={hnsw.dim}  size={hnsw.size}")

    config = ServeConfig(max_batch=16, max_wait_ms=2.0, cache_capacity=128)
    with CagraServer(
        hnsw, config, search_config=SearchConfig(itopk=64, seed=0)
    ) as server:
        # 1. serve every query through the micro-batching front end
        handles = [server.submit(q, k=10) for q in queries]
        found = np.stack([h.result().indices for h in handles])
        print(f"served HNSW recall@10: {recall(found, truth):.4f}")

        # 2. the result cache works over baselines too
        again = server.search(queries[0], k=10)
        print(f"repeat query served from cache: {again.from_cache}")

        # 3. hot-swap to a *different index kind* mid-session
        cagra = build_index("cagra", data, metric=metric, degree=16, seed=0)
        server.swap_index(cagra)
        print(f"after swap_index: backend kind is now "
              f"{server.ann_index.kind!r}")
        handles = [server.submit(q, k=10) for q in queries]
        found = np.stack([h.result().indices for h in handles])
        print(f"served CAGRA recall@10: {recall(found, truth):.4f}")

        print(f"\n{server.stats().summary()}")

    print("\nserver drained and stopped cleanly.")


if __name__ == "__main__":
    main()
