"""Large-batch throughput: CAGRA vs HNSW vs GPU baselines (Fig. 13 style).

Run:  python examples/batch_throughput.py

The batch-processing use case the paper targets with the single-CTA
implementation: 10K queries at once, recall@10.  Recall is measured for
real; QPS comes from the GPU/CPU cost models standing in for the A100 and
the 64-core EPYC.
"""

from repro import CagraIndex, GraphBuildConfig, SearchConfig
from repro.baselines import GgnnIndex, HnswIndex, exact_search
from repro.bench import (
    format_curve_table,
    run_beam_sweep_gpu,
    run_cagra_sweep,
    run_hnsw_sweep,
    speedup_at_recall,
)
from repro.datasets import load_dataset

BATCH = 10_000
K = 10


def main(scale: int = 3000, num_queries: int = 50) -> None:
    bundle = load_dataset("deep-1m", scale=scale, num_queries=num_queries)
    data, queries = bundle.data, bundle.queries
    truth, _ = exact_search(data, queries, K, metric=bundle.spec.metric)
    print(f"{bundle.spec.name} analogue: n={data.shape[0]}, dim={data.shape[1]}, "
          f"simulated batch={BATCH:,}")

    print("building CAGRA / HNSW / GGNN indexes (pure python, be patient)...")
    cagra = CagraIndex.build(data, GraphBuildConfig(graph_degree=32))
    hnsw = HnswIndex(data, m=16, ef_construction=100).build()
    ggnn = GgnnIndex(data, degree=32, shard_size=400).build()

    sweep = [10, 16, 32, 64, 128]
    curves = [
        run_cagra_sweep(cagra, queries, truth, K, sweep, BATCH,
                        SearchConfig(algo="single_cta")),
        run_cagra_sweep(cagra, queries, truth, K, sweep, BATCH,
                        SearchConfig(algo="single_cta"), dtype_bytes=2,
                        method="CAGRA (FP16)"),
        run_hnsw_sweep(hnsw, queries, truth, K, sweep, BATCH),
        run_beam_sweep_gpu(
            "GGNN",
            lambda q, k, beam: ggnn.search(q, k, beam_width=beam),
            queries, truth, K, [16, 32, 64, 128], BATCH,
            dim=data.shape[1], degree=32,
        ),
    ]
    print()
    print(format_curve_table(curves, f"recall@{K} vs simulated QPS, batch {BATCH:,}"))
    print()
    print(speedup_at_recall(curves, "HNSW", [0.90, 0.95]))
    print("\npaper shape check: CAGRA tens-of-x over HNSW (paper: 33-77x at "
          "90-95% recall), several-x over the GPU baselines (paper: 3.8-8.8x).")


if __name__ == "__main__":
    main()
